// Scenario builders: wire complete vGPRS networks matching the paper's
// figures so tests, benches and examples share one topology definition.
//
//  * build_vgprs():      the Fig. 2(b) single-PLMN network — MS(s), BTS,
//                        BSC, VMSC, VLR, HLR, SGSN, GGSN, IP cloud,
//                        gatekeeper, H.323 terminal(s).
//  * build_tromboning(): the two-country roaming scenario of Figs. 7-8,
//                        in classic-GSM or vGPRS flavour.
//  * build_handoff():    Fig. 9 — vGPRS network plus a neighbouring classic
//                        GSM MSC-B with its own BSS and an E interface.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "gprs/ggsn.hpp"
#include "gprs/sgsn.hpp"
#include "gsm/bsc.hpp"
#include "gsm/bts.hpp"
#include "gsm/hlr.hpp"
#include "gsm/mobile_station.hpp"
#include "gsm/msc.hpp"
#include "gsm/vlr.hpp"
#include "h323/gatekeeper.hpp"
#include "h323/gateway.hpp"
#include "h323/terminal.hpp"
#include "pstn/phone.hpp"
#include "pstn/switch.hpp"
#include "vgprs/latency.hpp"
#include "vgprs/vmsc.hpp"

namespace vgprs {

/// Registers every protocol catalog with the message registry.  Idempotent;
/// every scenario builder calls it.
void register_all_messages();

/// Deterministic per-subscriber identities: subscriber #i of PLMN `mcc`.
struct SubscriberIdentity {
  Imsi imsi;
  Msisdn msisdn;
  std::uint64_t ki;
};
SubscriberIdentity make_subscriber(std::uint16_t country_code,
                                   std::uint32_t index);

// ---------------------------------------------------------------------------

struct VgprsParams {
  std::uint32_t num_ms = 1;
  std::uint32_t num_terminals = 1;
  /// BSC+BTS subtrees under the one VMSC; MSs are assigned round-robin.
  /// With 1 cell the legacy names ("BSC", "BTS") are kept; with more the
  /// cells are "BSC1"/"BTS1" (CellId 101, LA 10), "BSC2"/"BTS2" (102, 11)…
  std::uint32_t num_cells = 1;
  std::uint32_t bsc_channels = 64;  // SDCCH and TCH pool size per BSC
  LatencyConfig latency;
  std::uint64_t seed = 1;
  bool authenticate_registration = true;
  bool authenticate_calls = true;
  bool ciphering = true;
  bool deactivate_pdp_when_idle = false;  // Section 6 ablation
  std::uint16_t country_code = 88;        // of the (single) PLMN
  /// Partition the network along its topology seams (per-cell BSS
  /// subtrees, GPRS backbone, H.323 side, CS core) for the sharded engine.
  bool sharded = false;
  unsigned workers = 1;  // sharded-engine worker threads (0 = hw cores)
};

struct VgprsScenario {
  Network net;
  Hlr* hlr = nullptr;
  Vlr* vlr = nullptr;
  Bts* bts = nullptr;  // cell 0 (== btss.front())
  Bsc* bsc = nullptr;  // cell 0 (== bscs.front())
  Vmsc* vmsc = nullptr;
  Sgsn* sgsn = nullptr;
  Ggsn* ggsn = nullptr;
  IpRouter* router = nullptr;
  Gatekeeper* gk = nullptr;
  std::vector<Bsc*> bscs;  // one per cell
  std::vector<Bts*> btss;  // one per cell
  std::vector<MobileStation*> ms;
  std::vector<H323Terminal*> terminals;

  explicit VgprsScenario(std::uint64_t seed) : net(seed) {}

  /// Runs the simulation until quiescent and returns events processed.
  std::size_t settle() { return net.run_until_idle(); }
};

std::unique_ptr<VgprsScenario> build_vgprs(const VgprsParams& params);

// ---------------------------------------------------------------------------

struct TrombParams {
  LatencyConfig latency;
  std::uint64_t seed = 1;
  bool use_vgprs = false;  // false: classic GSM (Fig. 7); true: Fig. 8
  bool roamer_registered = true;  // vGPRS: is x known at the local GK?
  bool sharded = false;  // UK side / HK core / HK BSS as separate shards
  unsigned workers = 1;
};

/// Two countries: the roamer x is a UK (44) subscriber visiting Hong Kong
/// (85); y is a fixed-line subscriber in Hong Kong who calls x's UK number.
struct TrombScenario {
  Network net;
  // UK home network
  Hlr* hlr_uk = nullptr;
  PstnSwitch* switch_uk = nullptr;
  GsmMsc* gmsc_uk = nullptr;
  // HK visited network
  PstnSwitch* switch_hk = nullptr;
  PstnSwitch* switch_hk_intl = nullptr;  // international gateway exchange
  Vlr* vlr_hk = nullptr;
  Bts* bts_hk = nullptr;
  Bsc* bsc_hk = nullptr;
  GsmMsc* msc_hk = nullptr;  // classic flavour
  Vmsc* vmsc_hk = nullptr;   // vGPRS flavour
  Sgsn* sgsn_hk = nullptr;
  Ggsn* ggsn_hk = nullptr;
  IpRouter* router_hk = nullptr;
  Gatekeeper* gk_hk = nullptr;
  H323Gateway* gw_hk = nullptr;
  MobileStation* roamer = nullptr;  // x
  PstnPhone* caller = nullptr;      // y
  SubscriberIdentity roamer_id;

  explicit TrombScenario(std::uint64_t seed) : net(seed) {}

  std::size_t settle() { return net.run_until_idle(); }

  /// International trunks seized for call delivery so far (both exchanges).
  [[nodiscard]] std::int64_t international_trunks() const {
    std::int64_t n = 0;
    if (switch_hk != nullptr) {
      n += switch_hk->trunks_used(TrunkClass::kInternational);
    }
    if (switch_hk_intl != nullptr) {
      n += switch_hk_intl->trunks_used(TrunkClass::kInternational);
    }
    if (switch_uk != nullptr) {
      n += switch_uk->trunks_used(TrunkClass::kInternational);
    }
    return n;
  }
};

std::unique_ptr<TrombScenario> build_tromboning(const TrombParams& params);

// ---------------------------------------------------------------------------

struct HandoffParams {
  LatencyConfig latency;
  std::uint64_t seed = 1;
  bool target_is_vmsc = false;  // VMSC->VMSC handoff follows same procedure
  bool sharded = false;  // core / cell 1 / cell 2 / MSC-B as shards
  unsigned workers = 1;
};

/// Fig. 9: a vGPRS network (anchor VMSC, cell 1) next to a second MSC
/// (classic GSM or another VMSC) serving cell 2.
struct HandoffScenario {
  Network net;
  Hlr* hlr = nullptr;
  Vlr* vlr = nullptr;
  Bts* bts1 = nullptr;
  Bsc* bsc1 = nullptr;
  Vmsc* vmsc = nullptr;  // anchor
  Sgsn* sgsn = nullptr;
  Ggsn* ggsn = nullptr;
  IpRouter* router = nullptr;
  Gatekeeper* gk = nullptr;
  H323Terminal* terminal = nullptr;
  // target side
  Bts* bts2 = nullptr;
  Bsc* bsc2 = nullptr;
  MscBase* msc_b = nullptr;
  MobileStation* ms = nullptr;

  explicit HandoffScenario(std::uint64_t seed) : net(seed) {}

  std::size_t settle() { return net.run_until_idle(); }
};

std::unique_ptr<HandoffScenario> build_handoff(const HandoffParams& params);

}  // namespace vgprs
