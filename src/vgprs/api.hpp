// Umbrella header: the library's public API in one include.
//
//   #include "vgprs/api.hpp"
//
//   vgprs::VgprsParams params;
//   auto net = vgprs::build_vgprs(params);
//   net->ms[0]->power_on();
//   net->settle();
//
// Layers, bottom-up:
//   common/   identifiers, byte codecs, Result, deterministic RNG
//   sim/      discrete-event engine (Network, Node, Message, traces)
//   pstn/     ISUP, switches, phones
//   gsm/      Um/Abis/A/MAP, BTS, BSC, MS, VLR, HLR, MSC machinery
//   gprs/     SGSN, GGSN, GTP, Gb, IP cloud, data mobiles
//   voice/    GSM FR frame model, RTP, E-model MOS
//   h323/     RAS, Q.931, gatekeeper, terminals, PSTN gateway
//   vgprs/    the VMSC (the paper's contribution) + scenario builders
//   tr23821/  the 3G TR 23.821 baseline the paper compares against
#pragma once

#include "common/bytes.hpp"
#include "common/ids.hpp"
#include "common/log.hpp"
#include "common/result.hpp"
#include "common/rng.hpp"

#include "sim/message.hpp"
#include "sim/network.hpp"
#include "sim/node.hpp"
#include "sim/proto.hpp"
#include "sim/stats.hpp"
#include "sim/time.hpp"
#include "sim/trace.hpp"

#include "pstn/messages.hpp"
#include "pstn/phone.hpp"
#include "pstn/switch.hpp"

#include "gsm/auth.hpp"
#include "gsm/bsc.hpp"
#include "gsm/bts.hpp"
#include "gsm/hlr.hpp"
#include "gsm/messages.hpp"
#include "gsm/mobile_station.hpp"
#include "gsm/msc.hpp"
#include "gsm/msc_base.hpp"
#include "gsm/types.hpp"
#include "gsm/vlr.hpp"

#include "gprs/data_ms.hpp"
#include "gprs/ggsn.hpp"
#include "gprs/ip.hpp"
#include "gprs/messages.hpp"
#include "gprs/sgsn.hpp"

#include "voice/codec.hpp"
#include "voice/rtp.hpp"

#include "h323/gatekeeper.hpp"
#include "h323/gateway.hpp"
#include "h323/messages.hpp"
#include "h323/terminal.hpp"

#include "vgprs/latency.hpp"
#include "vgprs/scenario.hpp"
#include "vgprs/vmsc.hpp"
