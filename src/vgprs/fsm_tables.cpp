#include "vgprs/fsm_tables.hpp"

#include "gprs/data_ms.hpp"
#include "gsm/msc_base.hpp"
#include "vgprs/vmsc.hpp"

namespace vgprs {
namespace {

// Exhaustive, default-free switches: -Wswitch turns an enum value missing
// from its table into a build failure.

constexpr std::string_view step_name(MscBase::Step s) {
  switch (s) {
    case MscBase::Step::kNone: return "none";
    case MscBase::Step::kAuthInfo: return "auth-info";
    case MscBase::Step::kAuthChallenge: return "auth-challenge";
    case MscBase::Step::kCipher: return "cipher";
    case MscBase::Step::kUla: return "ula";
    case MscBase::Step::kSubstrate: return "substrate";
    case MscBase::Step::kAwaitSetup: return "await-setup";
    case MscBase::Step::kAuthorize: return "authorize";
    case MscBase::Step::kPaging: return "paging";
    case MscBase::Step::kAwaitAlert: return "await-alert";
    case MscBase::Step::kAwaitAnswer: return "await-answer";
    case MscBase::Step::kMoProgress: return "mo-progress";
    case MscBase::Step::kActive: return "active";
    case MscBase::Step::kReleasingMs: return "releasing-ms";
    case MscBase::Step::kReleasingNet: return "releasing-net";
    case MscBase::Step::kClearing: return "clearing";
  }
  return "?";
}

constexpr std::string_view phase_name(Vmsc::VgprsState::Phase p) {
  switch (p) {
    case Vmsc::VgprsState::Phase::kNone: return "none";
    case Vmsc::VgprsState::Phase::kAttaching: return "attaching";
    case Vmsc::VgprsState::Phase::kActivatingSignaling:
      return "activating-signaling";
    case Vmsc::VgprsState::Phase::kRasRegistering: return "ras-registering";
    case Vmsc::VgprsState::Phase::kReady: return "ready";
  }
  return "?";
}

constexpr std::string_view data_state_name(GprsDataMs::State s) {
  switch (s) {
    case GprsDataMs::State::kDetached: return "detached";
    case GprsDataMs::State::kAttaching: return "attaching";
    case GprsDataMs::State::kActivating: return "activating";
    case GprsDataMs::State::kOnline: return "online";
  }
  return "?";
}

FsmTable msc_call_table() {
  using S = MscBase::Step;
  auto n = [](S s) { return step_name(s); };
  FsmTable t;
  t.name = "msc-call";
  t.initial = n(S::kNone);
  t.states = {n(S::kNone),        n(S::kAuthInfo),     n(S::kAuthChallenge),
              n(S::kCipher),      n(S::kUla),          n(S::kSubstrate),
              n(S::kAwaitSetup),  n(S::kAuthorize),    n(S::kPaging),
              n(S::kAwaitAlert),  n(S::kAwaitAnswer),  n(S::kMoProgress),
              n(S::kActive),      n(S::kReleasingMs),  n(S::kReleasingNet),
              n(S::kClearing)};
  t.transitions = {
      // Registration (Fig. 4) / MO entry (Fig. 5) / MT entry (Fig. 6).
      {n(S::kNone), "A_Location_Update", n(S::kAuthInfo)},
      {n(S::kNone), "A_Location_Update(no-auth)", n(S::kUla)},
      {n(S::kNone), "A_CM_Service_Request", n(S::kAuthInfo)},
      {n(S::kNone), "A_CM_Service_Request(no-auth)", n(S::kAwaitSetup)},
      {n(S::kNone), "start_mt_call", n(S::kPaging)},
      // Security sub-procedure, shared by all three procedures.
      {n(S::kAuthInfo), "MAP_Send_Auth_Info_ack", n(S::kAuthChallenge)},
      {n(S::kAuthInfo), "MAP_Send_Auth_Info_ack(no-vectors)", n(S::kNone)},
      {n(S::kAuthChallenge), "A_Auth_Response", n(S::kCipher)},
      {n(S::kAuthChallenge), "A_Auth_Response(mismatch)", n(S::kNone)},
      {n(S::kAuthChallenge), "A_Auth_Response(register,no-cipher)",
       n(S::kUla)},
      {n(S::kAuthChallenge), "A_Auth_Response(mo,no-cipher)",
       n(S::kAwaitSetup)},
      {n(S::kAuthChallenge), "A_Auth_Response(mt,no-cipher)",
       n(S::kAwaitAlert)},
      {n(S::kCipher), "A_Cipher_Mode_Complete(register)", n(S::kUla)},
      {n(S::kCipher), "A_Cipher_Mode_Complete(mo)", n(S::kAwaitSetup)},
      {n(S::kCipher), "A_Cipher_Mode_Complete(mt)", n(S::kAwaitAlert)},
      // Registration tail.
      {n(S::kUla), "MAP_Update_Location_Area_ack", n(S::kSubstrate)},
      {n(S::kUla), "MAP_Update_Location_Area_ack(failure)", n(S::kNone)},
      {n(S::kSubstrate), "finish_registration", n(S::kNone)},
      {n(S::kSubstrate), "reject_registration", n(S::kNone)},
      // MO call setup.
      {n(S::kAwaitSetup), "A_Setup", n(S::kAuthorize)},
      {n(S::kAuthorize), "MAP_Send_Info_For_Outgoing_Call_ack",
       n(S::kMoProgress)},
      {n(S::kAuthorize), "MAP_Send_Info_For_Outgoing_Call_ack(failure)",
       n(S::kReleasingNet)},
      {n(S::kMoProgress), "notify_mo_connect", n(S::kActive)},
      {n(S::kMoProgress), "reject_mo_call", n(S::kReleasingNet)},
      {n(S::kMoProgress), "A_Disconnect", n(S::kReleasingMs)},
      // MT call setup.
      {n(S::kPaging), "A_Paging_Response", n(S::kAuthInfo)},
      {n(S::kPaging), "A_Paging_Response(no-auth)", n(S::kAwaitAlert)},
      {n(S::kAwaitAlert), "A_Alerting", n(S::kAwaitAnswer)},
      {n(S::kAwaitAlert), "A_Disconnect", n(S::kReleasingMs)},
      {n(S::kAwaitAnswer), "A_Connect", n(S::kActive)},
      {n(S::kAwaitAnswer), "A_Disconnect", n(S::kReleasingMs)},
      // Conversation and clearing (steps 3.1-3.4).
      {n(S::kActive), "A_Disconnect", n(S::kReleasingMs)},
      {n(S::kActive), "release_from_network", n(S::kReleasingNet)},
      {n(S::kReleasingMs), "A_Release_Complete", n(S::kClearing)},
      {n(S::kReleasingNet), "A_Release", n(S::kClearing)},
      {n(S::kClearing), "A_Clear_Complete", n(S::kNone)},
      // Procedure supervision: a stalled registration resets, a stalled
      // call procedure aborts into radio clearing.
      {n(S::kAuthInfo), "procedure_guard(register)", n(S::kNone)},
      {n(S::kAuthorize), "procedure_guard", n(S::kClearing)},
      {n(S::kAwaitSetup), "procedure_guard", n(S::kClearing)},
      {n(S::kPaging), "procedure_guard", n(S::kClearing)},
      {n(S::kAwaitAlert), "procedure_guard", n(S::kClearing)},
      {n(S::kAwaitAnswer), "procedure_guard", n(S::kClearing)},
      {n(S::kMoProgress), "procedure_guard", n(S::kClearing)},
      {n(S::kReleasingMs), "procedure_guard", n(S::kClearing)},
      {n(S::kReleasingNet), "procedure_guard", n(S::kClearing)},
  };
  return t;
}

FsmTable vmsc_endpoint_table() {
  using P = Vmsc::VgprsState::Phase;
  auto n = [](P p) { return phase_name(p); };
  FsmTable t;
  t.name = "vmsc-endpoint";
  t.initial = n(P::kNone);
  t.states = {n(P::kNone), n(P::kAttaching), n(P::kActivatingSignaling),
              n(P::kRasRegistering), n(P::kReady)};
  t.transitions = {
      // Fig. 4 steps 1.3-1.5.
      {n(P::kNone), "registration_substrate", n(P::kAttaching)},
      {n(P::kAttaching), "GPRS_Attach_Accept", n(P::kActivatingSignaling)},
      {n(P::kAttaching), "GPRS_Attach_Reject", n(P::kNone)},
      {n(P::kActivatingSignaling), "Activate_PDP_Context_Accept",
       n(P::kRasRegistering)},
      {n(P::kActivatingSignaling), "Activate_PDP_Context_Reject",
       n(P::kNone)},
      {n(P::kRasRegistering), "RAS_RCF", n(P::kReady)},
      {n(P::kRasRegistering), "RAS_RRJ", n(P::kNone)},
      // IMSI detach or MAP_Cancel_Location erases the endpoint state.
      {n(P::kReady), "subscriber_removed", n(P::kNone)},
  };
  return t;
}

FsmTable pdp_context_table() {
  using S = GprsDataMs::State;
  auto n = [](S s) { return data_state_name(s); };
  FsmTable t;
  t.name = "pdp-context";
  t.initial = n(S::kDetached);
  t.states = {n(S::kDetached), n(S::kAttaching), n(S::kActivating),
              n(S::kOnline)};
  t.transitions = {
      {n(S::kDetached), "power_on", n(S::kAttaching)},
      {n(S::kAttaching), "GPRS_Attach_Accept", n(S::kActivating)},
      {n(S::kAttaching), "GPRS_Attach_Reject", n(S::kDetached)},
      {n(S::kActivating), "Activate_PDP_Context_Accept", n(S::kOnline)},
      {n(S::kOnline), "GPRS_Detach_Request", n(S::kDetached)},
  };
  return t;
}

}  // namespace

const std::vector<FsmTable>& conformance_fsm_tables() {
  static const std::vector<FsmTable> tables{
      msc_call_table(), vmsc_endpoint_table(), pdp_context_table()};
  return tables;
}

}  // namespace vgprs
