#include "vgprs/fsm_tables.hpp"

#include "gprs/data_ms.hpp"
#include "gsm/msc_base.hpp"
#include "tr23821/tr_ms.hpp"
#include "vgprs/vmsc.hpp"

namespace vgprs {
namespace {

// Exhaustive, default-free switches: -Wswitch turns an enum value missing
// from its table into a build failure.

constexpr std::string_view step_name(MscBase::Step s) {
  switch (s) {
    case MscBase::Step::kNone: return "none";
    case MscBase::Step::kAuthInfo: return "auth-info";
    case MscBase::Step::kAuthChallenge: return "auth-challenge";
    case MscBase::Step::kCipher: return "cipher";
    case MscBase::Step::kUla: return "ula";
    case MscBase::Step::kSubstrate: return "substrate";
    case MscBase::Step::kAwaitSetup: return "await-setup";
    case MscBase::Step::kAuthorize: return "authorize";
    case MscBase::Step::kPaging: return "paging";
    case MscBase::Step::kAwaitAlert: return "await-alert";
    case MscBase::Step::kAwaitAnswer: return "await-answer";
    case MscBase::Step::kMoProgress: return "mo-progress";
    case MscBase::Step::kActive: return "active";
    case MscBase::Step::kReleasingMs: return "releasing-ms";
    case MscBase::Step::kReleasingNet: return "releasing-net";
    case MscBase::Step::kClearing: return "clearing";
  }
  return "?";
}

constexpr std::string_view phase_name(Vmsc::VgprsState::Phase p) {
  switch (p) {
    case Vmsc::VgprsState::Phase::kNone: return "none";
    case Vmsc::VgprsState::Phase::kAttaching: return "attaching";
    case Vmsc::VgprsState::Phase::kActivatingSignaling:
      return "activating-signaling";
    case Vmsc::VgprsState::Phase::kRasRegistering: return "ras-registering";
    case Vmsc::VgprsState::Phase::kReady: return "ready";
  }
  return "?";
}

constexpr std::string_view data_state_name(GprsDataMs::State s) {
  switch (s) {
    case GprsDataMs::State::kDetached: return "detached";
    case GprsDataMs::State::kAttaching: return "attaching";
    case GprsDataMs::State::kActivating: return "activating";
    case GprsDataMs::State::kOnline: return "online";
  }
  return "?";
}

constexpr std::string_view tr_state_name(TrMobileStation::State s) {
  switch (s) {
    case TrMobileStation::State::kDetached: return "detached";
    case TrMobileStation::State::kAttaching: return "attaching";
    case TrMobileStation::State::kActivatingInitial:
      return "activating-initial";
    case TrMobileStation::State::kRasRegistering: return "ras-registering";
    case TrMobileStation::State::kDeactivatingIdle: return "deactivating-idle";
    case TrMobileStation::State::kIdle: return "idle";
    case TrMobileStation::State::kActivatingForCall:
      return "activating-for-call";
    case TrMobileStation::State::kActivatingForPage:
      return "activating-for-page";
    case TrMobileStation::State::kArqSent: return "arq-sent";
    case TrMobileStation::State::kCalling: return "calling";
    case TrMobileStation::State::kRingback: return "ringback";
    case TrMobileStation::State::kIncomingArq: return "incoming-arq";
    case TrMobileStation::State::kRinging: return "ringing";
    case TrMobileStation::State::kConnected: return "connected";
    case TrMobileStation::State::kAwaitDcf: return "await-dcf";
    case TrMobileStation::State::kDeactivatingAfterCall:
      return "deactivating-after-call";
  }
  return "?";
}

FsmTable msc_call_table() {
  using S = MscBase::Step;
  auto n = [](S s) { return step_name(s); };
  FsmTable t;
  t.name = "msc-call";
  t.initial = n(S::kNone);
  t.states = {n(S::kNone),        n(S::kAuthInfo),     n(S::kAuthChallenge),
              n(S::kCipher),      n(S::kUla),          n(S::kSubstrate),
              n(S::kAwaitSetup),  n(S::kAuthorize),    n(S::kPaging),
              n(S::kAwaitAlert),  n(S::kAwaitAnswer),  n(S::kMoProgress),
              n(S::kActive),      n(S::kReleasingMs),  n(S::kReleasingNet),
              n(S::kClearing)};
  t.transitions = {
      // Registration (Fig. 4) / MO entry (Fig. 5) / MT entry (Fig. 6).
      {n(S::kNone), "A_Location_Update", n(S::kAuthInfo),
       {"MAP_Send_Auth_Info"}},
      {n(S::kNone), "A_Location_Update(no-auth)", n(S::kUla),
       {"MAP_Update_Location_Area"}},
      {n(S::kNone), "A_CM_Service_Request", n(S::kAuthInfo),
       {"MAP_Send_Auth_Info"}},
      {n(S::kNone), "A_CM_Service_Request(no-auth)", n(S::kAwaitSetup),
       {"A_CM_Service_Accept"}},
      {n(S::kNone), "start_mt_call", n(S::kPaging), {"A_Paging"}},
      // Security sub-procedure, shared by all three procedures.
      {n(S::kAuthInfo), "MAP_Send_Auth_Info_ack", n(S::kAuthChallenge),
       {"A_Auth_Request"}},
      {n(S::kAuthInfo), "MAP_Send_Auth_Info_ack(no-vectors)", n(S::kNone),
       {"A_Location_Update_Reject", "A_CM_Service_Reject"}},
      {n(S::kAuthChallenge), "A_Auth_Response", n(S::kCipher),
       {"A_Cipher_Mode_Command"}},
      {n(S::kAuthChallenge), "A_Auth_Response(mismatch)", n(S::kNone),
       {"A_Location_Update_Reject", "A_CM_Service_Reject"}},
      {n(S::kAuthChallenge), "A_Auth_Response(register,no-cipher)",
       n(S::kUla), {"MAP_Update_Location_Area"}},
      {n(S::kAuthChallenge), "A_Auth_Response(mo,no-cipher)",
       n(S::kAwaitSetup), {"A_CM_Service_Accept"}},
      {n(S::kAuthChallenge), "A_Auth_Response(mt,no-cipher)",
       n(S::kAwaitAlert), {"A_Setup", "A_Assignment_Request"}},
      {n(S::kCipher), "A_Cipher_Mode_Complete(register)", n(S::kUla),
       {"MAP_Update_Location_Area"}},
      {n(S::kCipher), "A_Cipher_Mode_Complete(mo)", n(S::kAwaitSetup),
       {"A_CM_Service_Accept"}},
      {n(S::kCipher), "A_Cipher_Mode_Complete(mt)", n(S::kAwaitAlert),
       {"A_Setup", "A_Assignment_Request"}},
      // Registration tail.
      {n(S::kUla), "MAP_Update_Location_Area_ack", n(S::kSubstrate)},
      {n(S::kUla), "MAP_Update_Location_Area_ack(failure)", n(S::kNone),
       {"A_Location_Update_Reject"}},
      {n(S::kSubstrate), "finish_registration", n(S::kNone),
       {"A_Location_Update_Accept"}},
      {n(S::kSubstrate), "reject_registration", n(S::kNone),
       {"A_Location_Update_Reject"}},
      // MO call setup.
      {n(S::kAwaitSetup), "A_Setup", n(S::kAuthorize),
       {"MAP_Send_Info_For_Outgoing_Call"}},
      {n(S::kAuthorize), "MAP_Send_Info_For_Outgoing_Call_ack",
       n(S::kMoProgress),
       {"A_Call_Proceeding", "A_Assignment_Request", "Gb_UnitData"}},
      {n(S::kAuthorize), "MAP_Send_Info_For_Outgoing_Call_ack(failure)",
       n(S::kReleasingNet), {"A_Disconnect"}},
      {n(S::kMoProgress), "notify_mo_alerting", n(S::kMoProgress),
       {"A_Alerting"}},
      {n(S::kMoProgress), "notify_mo_connect", n(S::kActive),
       {"A_Connect", "Activate_PDP_Context_Request"}},
      {n(S::kMoProgress), "reject_mo_call", n(S::kReleasingNet),
       {"A_Disconnect"}},
      {n(S::kMoProgress), "A_Disconnect", n(S::kReleasingMs),
       {"Gb_UnitData"}},
      // MT call setup.
      {n(S::kPaging), "A_Paging_Response", n(S::kAuthInfo),
       {"MAP_Send_Auth_Info"}},
      {n(S::kPaging), "A_Paging_Response(no-auth)", n(S::kAwaitAlert),
       {"A_Setup", "A_Assignment_Request"}},
      {n(S::kAwaitAlert), "A_Alerting", n(S::kAwaitAnswer), {"Gb_UnitData"}},
      {n(S::kAwaitAlert), "A_Disconnect", n(S::kReleasingMs),
       {"Gb_UnitData"}},
      {n(S::kAwaitAnswer), "A_Connect", n(S::kActive),
       {"A_Connect_Ack", "Gb_UnitData", "Activate_PDP_Context_Request"}},
      {n(S::kAwaitAnswer), "A_Disconnect", n(S::kReleasingMs),
       {"Gb_UnitData"}},
      // Conversation and clearing (steps 3.1-3.4).
      {n(S::kActive), "A_Disconnect", n(S::kReleasingMs), {"Gb_UnitData"}},
      {n(S::kActive), "release_from_network", n(S::kReleasingNet),
       {"A_Disconnect"}},
      {n(S::kReleasingMs), "A_Release_Complete", n(S::kClearing),
       {"A_Clear_Command"}},
      {n(S::kReleasingNet), "A_Release", n(S::kClearing),
       {"A_Release_Complete", "A_Clear_Command"}},
      {n(S::kClearing), "A_Clear_Complete", n(S::kNone),
       {"Deactivate_PDP_Context_Request"}},
      // Procedure supervision: a stalled registration resets, a stalled
      // call procedure aborts into radio clearing, and a stalled clearing
      // (A_Clear_Complete lost after an abort) force-clears locally.  The
      // same event also stands for the Retransmitter give-up, which aborts
      // through the identical path well before the guard fires.
      {n(S::kAuthInfo), "procedure_guard(register)", n(S::kNone)},
      {n(S::kAuthInfo), "procedure_guard(call)", n(S::kClearing),
       {"A_Clear_Command"}},
      {n(S::kAuthChallenge), "procedure_guard(register)", n(S::kNone)},
      {n(S::kAuthChallenge), "procedure_guard(call)", n(S::kClearing),
       {"A_Clear_Command"}},
      {n(S::kCipher), "procedure_guard(register)", n(S::kNone)},
      {n(S::kCipher), "procedure_guard(call)", n(S::kClearing),
       {"A_Clear_Command"}},
      {n(S::kUla), "procedure_guard", n(S::kNone)},
      {n(S::kSubstrate), "procedure_guard", n(S::kNone)},
      {n(S::kAuthorize), "procedure_guard", n(S::kClearing),
       {"A_Clear_Command"}},
      {n(S::kAwaitSetup), "procedure_guard", n(S::kClearing),
       {"A_Clear_Command"}},
      {n(S::kPaging), "procedure_guard", n(S::kClearing),
       {"A_Clear_Command"}},
      {n(S::kAwaitAlert), "procedure_guard", n(S::kClearing),
       {"A_Clear_Command"}},
      {n(S::kAwaitAnswer), "procedure_guard", n(S::kClearing),
       {"A_Clear_Command"}},
      {n(S::kMoProgress), "procedure_guard", n(S::kClearing),
       {"A_Clear_Command"}},
      {n(S::kReleasingMs), "procedure_guard", n(S::kClearing),
       {"A_Clear_Command"}},
      {n(S::kReleasingNet), "procedure_guard", n(S::kClearing),
       {"A_Clear_Command"}},
      {n(S::kClearing), "procedure_guard", n(S::kNone)},
  };
  t.stable = {n(S::kNone), n(S::kActive)};
  t.timers = {
      {n(S::kAuthInfo), "procedure_guard", ""},
      {n(S::kAuthChallenge), "procedure_guard", ""},
      {n(S::kCipher), "procedure_guard", ""},
      {n(S::kUla), "procedure_guard", "MAP_Update_Location_Area"},
      {n(S::kSubstrate), "procedure_guard", ""},
      {n(S::kAwaitSetup), "procedure_guard", ""},
      {n(S::kAuthorize), "procedure_guard",
       "MAP_Send_Info_For_Outgoing_Call"},
      {n(S::kPaging), "procedure_guard", ""},
      {n(S::kAwaitAlert), "procedure_guard", ""},
      {n(S::kAwaitAnswer), "procedure_guard", ""},
      {n(S::kMoProgress), "procedure_guard", ""},
      {n(S::kReleasingMs), "procedure_guard", ""},
      {n(S::kReleasingNet), "procedure_guard", ""},
      {n(S::kClearing), "procedure_guard", ""},
  };
  return t;
}

FsmTable vmsc_endpoint_table() {
  using P = Vmsc::VgprsState::Phase;
  auto n = [](P p) { return phase_name(p); };
  FsmTable t;
  t.name = "vmsc-endpoint";
  t.initial = n(P::kNone);
  t.states = {n(P::kNone), n(P::kAttaching), n(P::kActivatingSignaling),
              n(P::kRasRegistering), n(P::kReady)};
  t.transitions = {
      // Fig. 4 steps 1.3-1.5.
      {n(P::kNone), "registration_substrate", n(P::kAttaching),
       {"GPRS_Attach_Request"}},
      {n(P::kAttaching), "GPRS_Attach_Accept", n(P::kActivatingSignaling),
       {"Activate_PDP_Context_Request"}},
      {n(P::kAttaching), "GPRS_Attach_Reject", n(P::kNone),
       {"A_Location_Update_Reject"}},
      {n(P::kAttaching), "attach_give_up", n(P::kNone),
       {"A_Location_Update_Reject"}},
      {n(P::kActivatingSignaling), "Activate_PDP_Context_Accept",
       n(P::kRasRegistering), {"Gb_UnitData"}},
      {n(P::kActivatingSignaling), "Activate_PDP_Context_Reject",
       n(P::kNone), {"A_Location_Update_Reject"}},
      {n(P::kActivatingSignaling), "pdp_give_up", n(P::kNone),
       {"A_Location_Update_Reject"}},
      {n(P::kRasRegistering), "RAS_RCF", n(P::kReady),
       {"A_Location_Update_Accept", "Deactivate_PDP_Context_Request"}},
      {n(P::kRasRegistering), "RAS_RRJ", n(P::kNone),
       {"A_Location_Update_Reject"}},
      {n(P::kRasRegistering), "rrq_give_up", n(P::kNone),
       {"A_Location_Update_Reject"}},
      // handle_gprs tears down the whole endpoint state on an attach
      // reject in ANY phase (the SGSN is disowning the subscription), not
      // just while the attach is outstanding.
      {n(P::kActivatingSignaling), "GPRS_Attach_Reject", n(P::kNone)},
      {n(P::kRasRegistering), "GPRS_Attach_Reject", n(P::kNone)},
      {n(P::kReady), "GPRS_Attach_Reject", n(P::kNone)},
      // IMSI detach or MAP_Cancel_Location erases the endpoint state.
      {n(P::kReady), "subscriber_removed", n(P::kNone),
       {"GPRS_Detach_Request", "Gb_UnitData"}},
  };
  t.stable = {n(P::kNone), n(P::kReady)};
  t.timers = {
      {n(P::kAttaching), "attach_give_up", "GPRS_Attach_Request"},
      {n(P::kActivatingSignaling), "pdp_give_up",
       "Activate_PDP_Context_Request"},
      // The RRQ rides Gb_UnitData through the tunnel; the Retransmitter
      // keys it by IMSI, not by a flow-table request name.
      {n(P::kRasRegistering), "rrq_give_up", ""},
  };
  return t;
}

FsmTable pdp_context_table() {
  using S = GprsDataMs::State;
  auto n = [](S s) { return data_state_name(s); };
  FsmTable t;
  t.name = "pdp-context";
  t.initial = n(S::kDetached);
  t.states = {n(S::kDetached), n(S::kAttaching), n(S::kActivating),
              n(S::kOnline)};
  t.transitions = {
      {n(S::kDetached), "power_on", n(S::kAttaching),
       {"GPRS_Attach_Request"}},
      {n(S::kAttaching), "GPRS_Attach_Accept", n(S::kActivating),
       {"Activate_PDP_Context_Request"}},
      {n(S::kAttaching), "GPRS_Attach_Reject", n(S::kDetached)},
      {n(S::kActivating), "Activate_PDP_Context_Accept", n(S::kOnline)},
      {n(S::kActivating), "Activate_PDP_Context_Reject", n(S::kDetached)},
      // The data MS treats a late attach reject as an unconditional
      // detach order, whatever state it reached meanwhile.
      {n(S::kActivating), "GPRS_Attach_Reject", n(S::kDetached)},
      {n(S::kOnline), "GPRS_Attach_Reject", n(S::kDetached)},
      {n(S::kOnline), "GPRS_Detach_Request", n(S::kDetached)},
  };
  t.stable = {n(S::kDetached), n(S::kOnline)};
  // No timers: the plain data MS is best-effort background load (see the
  // verify:allow-timer exemptions in verify_model.cpp).
  return t;
}

FsmTable handoff_anchor_table() {
  FsmTable t;
  t.name = "handoff-anchor";
  t.initial = "idle";
  t.states = {"idle", "preparing", "commanded", "handed-off"};
  t.terminal = {"handed-off"};
  t.transitions = {
      // Fig. 9: the serving BSC reports a cell this MSC does not control.
      {"idle", "A_Handover_Required", "preparing", {"MAP_Prepare_Handover"}},
      {"preparing", "MAP_Prepare_Handover_ack", "commanded",
       {"A_Handover_Command"}},
      {"preparing", "MAP_Prepare_Handover_ack(failure)", "idle"},
      {"commanded", "MAP_Send_End_Signal", "handed-off",
       {"A_Clear_Command"}},
      // Supervision: the anchor bounds the whole preparation; on expiry
      // the call simply stays on the serving cell.
      {"preparing", "handoff_guard", "idle"},
      {"commanded", "handoff_guard", "idle"},
  };
  t.stable = {"idle", "handed-off"};
  t.timers = {
      {"preparing", "handoff_guard", ""},
      {"commanded", "handoff_guard", ""},
  };
  return t;
}

FsmTable handoff_target_table() {
  FsmTable t;
  t.name = "handoff-target";
  t.initial = "idle";
  t.states = {"idle", "reserving", "awaiting-access", "serving"};
  t.terminal = {"serving"};
  t.transitions = {
      {"idle", "MAP_Prepare_Handover", "reserving", {"A_Handover_Request"}},
      {"reserving", "A_Handover_Request_Ack", "awaiting-access",
       {"MAP_Prepare_Handover_ack"}},
      {"awaiting-access", "A_Handover_Complete", "serving",
       {"MAP_Send_End_Signal"}},
  };
  t.stable = {"idle", "serving"};
  // No timers: the target's reservation is supervised end-to-end by the
  // anchor's handoff guard (see the verify:allow-* exemptions).
  return t;
}

FsmTable tr_ms_table() {
  using S = TrMobileStation::State;
  auto n = [](S s) { return tr_state_name(s); };
  FsmTable t;
  t.name = "tr-ms";
  t.initial = n(S::kDetached);
  t.states = {n(S::kDetached),          n(S::kAttaching),
              n(S::kActivatingInitial), n(S::kRasRegistering),
              n(S::kDeactivatingIdle),  n(S::kIdle),
              n(S::kActivatingForCall), n(S::kActivatingForPage),
              n(S::kArqSent),           n(S::kCalling),
              n(S::kRingback),          n(S::kIncomingArq),
              n(S::kRinging),           n(S::kConnected),
              n(S::kAwaitDcf),          n(S::kDeactivatingAfterCall)};
  // Models the TR 23.821 resource policy the paper compares against
  // (deactivate_pdp_when_idle = true): the context is torn down after
  // registration and after every call, and rebuilt per call.
  t.transitions = {
      // Registration: attach, initial PDP context, RAS, teardown.
      {n(S::kDetached), "power_on", n(S::kAttaching),
       {"GPRS_Attach_Request"}},
      {n(S::kAttaching), "GPRS_Attach_Accept", n(S::kActivatingInitial),
       {"Activate_PDP_Context_Request"}},
      {n(S::kAttaching), "GPRS_Attach_Reject", n(S::kDetached)},
      {n(S::kAttaching), "attach_give_up", n(S::kDetached)},
      {n(S::kActivatingInitial), "Activate_PDP_Context_Accept",
       n(S::kRasRegistering), {"Gb_UnitData"}},
      {n(S::kActivatingInitial), "Activate_PDP_Context_Reject", n(S::kIdle)},
      {n(S::kActivatingInitial), "pdp_give_up", n(S::kIdle)},
      {n(S::kRasRegistering), "RAS_RCF", n(S::kDeactivatingIdle),
       {"Deactivate_PDP_Context_Request"}},
      {n(S::kRasRegistering), "rrq_give_up", n(S::kDeactivatingIdle),
       {"Deactivate_PDP_Context_Request"}},
      {n(S::kDeactivatingIdle), "Deactivate_PDP_Context_Accept", n(S::kIdle)},
      {n(S::kDeactivatingIdle), "deactivate_give_up", n(S::kIdle)},
      // Origination: rebuild the context, then admission and setup.
      {n(S::kIdle), "dial", n(S::kActivatingForCall),
       {"Activate_PDP_Context_Request"}},
      {n(S::kActivatingForCall), "Activate_PDP_Context_Accept",
       n(S::kArqSent), {"Gb_UnitData"}},
      {n(S::kActivatingForCall), "Activate_PDP_Context_Reject", n(S::kIdle)},
      {n(S::kActivatingForCall), "pdp_give_up", n(S::kIdle)},
      {n(S::kArqSent), "RAS_ACF", n(S::kCalling), {"Gb_UnitData"}},
      {n(S::kArqSent), "RAS_ARJ", n(S::kAwaitDcf), {"Gb_UnitData"}},
      {n(S::kArqSent), "arq_give_up", n(S::kAwaitDcf), {"Gb_UnitData"}},
      {n(S::kCalling), "Q931_Alerting", n(S::kRingback)},
      {n(S::kCalling), "Q931_Connect", n(S::kConnected)},
      {n(S::kCalling), "Q931_Release_Complete", n(S::kAwaitDcf),
       {"Gb_UnitData"}},
      {n(S::kCalling), "setup_give_up", n(S::kAwaitDcf), {"Gb_UnitData"}},
      {n(S::kCalling), "hangup", n(S::kAwaitDcf), {"Gb_UnitData"}},
      {n(S::kRingback), "Q931_Connect", n(S::kConnected)},
      {n(S::kRingback), "Q931_Release_Complete", n(S::kAwaitDcf),
       {"Gb_UnitData"}},
      {n(S::kRingback), "ringback_timeout", n(S::kAwaitDcf),
       {"Gb_UnitData"}},
      {n(S::kRingback), "hangup", n(S::kAwaitDcf), {"Gb_UnitData"}},
      // Termination: network-initiated activation, admission, ringing.
      {n(S::kIdle), "Request_PDP_Context_Activation",
       n(S::kActivatingForPage), {"Activate_PDP_Context_Request"}},
      {n(S::kActivatingForPage), "Activate_PDP_Context_Accept", n(S::kIdle),
       {}},
      {n(S::kActivatingForPage), "Activate_PDP_Context_Reject", n(S::kIdle)},
      {n(S::kActivatingForPage), "pdp_give_up", n(S::kIdle)},
      // A caller's Setup that overtakes the page-triggered activation is
      // held (pending_setup_) and replayed once the context is up.
      {n(S::kActivatingForPage), "Q931_Setup(held)",
       n(S::kActivatingForPage)},
      {n(S::kIdle), "Q931_Setup(held)", n(S::kIdle)},
      {n(S::kIdle), "Q931_Setup", n(S::kIncomingArq), {"Gb_UnitData"}},
      {n(S::kIncomingArq), "RAS_ACF", n(S::kRinging), {"Gb_UnitData"}},
      {n(S::kIncomingArq), "RAS_ARJ", n(S::kAwaitDcf), {"Gb_UnitData"}},
      {n(S::kIncomingArq), "arq_give_up", n(S::kAwaitDcf), {"Gb_UnitData"}},
      {n(S::kIncomingArq), "Q931_Release_Complete", n(S::kAwaitDcf),
       {"Gb_UnitData"}},
      {n(S::kRinging), "answer_timer", n(S::kConnected), {"Gb_UnitData"}},
      {n(S::kRinging), "Q931_Release_Complete", n(S::kAwaitDcf),
       {"Gb_UnitData"}},
      {n(S::kRinging), "hangup", n(S::kAwaitDcf), {"Gb_UnitData"}},
      // Conversation and teardown: DRQ, DCF, context deactivation.
      {n(S::kConnected), "hangup", n(S::kAwaitDcf), {"Gb_UnitData"}},
      {n(S::kConnected), "Q931_Release_Complete", n(S::kAwaitDcf),
       {"Gb_UnitData"}},
      {n(S::kAwaitDcf), "RAS_DCF", n(S::kDeactivatingAfterCall),
       {"Deactivate_PDP_Context_Request"}},
      {n(S::kAwaitDcf), "drq_give_up", n(S::kDeactivatingAfterCall),
       {"Deactivate_PDP_Context_Request"}},
      {n(S::kDeactivatingAfterCall), "Deactivate_PDP_Context_Accept",
       n(S::kIdle)},
      {n(S::kDeactivatingAfterCall), "deactivate_give_up", n(S::kIdle)},
  };
  t.stable = {n(S::kDetached), n(S::kIdle), n(S::kConnected)};
  t.timers = {
      {n(S::kAttaching), "attach_give_up", "GPRS_Attach_Request"},
      {n(S::kActivatingInitial), "pdp_give_up",
       "Activate_PDP_Context_Request"},
      {n(S::kRasRegistering), "rrq_give_up", ""},
      {n(S::kDeactivatingIdle), "deactivate_give_up",
       "Deactivate_PDP_Context_Request"},
      {n(S::kActivatingForCall), "pdp_give_up",
       "Activate_PDP_Context_Request"},
      {n(S::kActivatingForPage), "pdp_give_up",
       "Activate_PDP_Context_Request"},
      {n(S::kArqSent), "arq_give_up", ""},
      {n(S::kCalling), "setup_give_up", ""},
      {n(S::kRingback), "ringback_timeout", ""},
      {n(S::kIncomingArq), "arq_give_up", ""},
      {n(S::kRinging), "answer_timer", ""},
      {n(S::kAwaitDcf), "drq_give_up", ""},
      {n(S::kDeactivatingAfterCall), "deactivate_give_up",
       "Deactivate_PDP_Context_Request"},
  };
  return t;
}

}  // namespace

const std::vector<FsmTable>& conformance_fsm_tables() {
  static const std::vector<FsmTable> tables{
      msc_call_table(),       vmsc_endpoint_table(),  pdp_context_table(),
      handoff_anchor_table(), handoff_target_table(), tr_ms_table()};
  return tables;
}

}  // namespace vgprs
