// The paper's message flows (Figs. 4-9) and the TR 23.821 baseline flows as
// data tables.  Tests assert these flows against recorded traces; vgprs_lint
// cross-checks every message name in them against the wire-format registry,
// so a typo'd step fails the build instead of silently matching nothing.
//
// Node names ("MS1", "VMSC", ...) follow the scenario builders in
// scenario.hpp / tr_scenario.hpp; message names are registry wire names.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "sim/trace.hpp"

namespace vgprs {

/// Fig. 4 steps 1.1-1.6: vGPRS registration (attach + PDP + RAS).
const std::vector<FlowStep>& fig4_registration_flow();

/// Fig. 5 steps 2.1-2.9: MS call origination toward an H.323 terminal.
const std::vector<FlowStep>& fig5_origination_flow();

/// Fig. 5 steps 3.1-3.4: call release by the MS.
const std::vector<FlowStep>& fig5_release_flow();

/// Fig. 6 steps 4.1-4.8: call termination at the MS.
const std::vector<FlowStep>& fig6_termination_flow();

/// Fig. 7: classic GSM call delivery to an international roamer
/// (tromboning through the home PLMN).
const std::vector<FlowStep>& fig7_classic_tromboning_flow();

/// Fig. 8: the same call delivered locally by vGPRS (no tromboning).
const std::vector<FlowStep>& fig8_vgprs_tromboning_flow();

/// Fig. 9: inter-system handoff with the VMSC as anchor.  The target MSC
/// name differs between the MSC-B and VMSC-B variants of the scenario.
std::vector<FlowStep> fig9_handoff_flow(std::string_view target_msc);

/// TR 23.821: origination requires re-activating the per-call PDP context.
const std::vector<FlowStep>& tr_origination_flow();

/// TR 23.821: termination uses network-initiated PDP context activation.
const std::vector<FlowStep>& tr_termination_flow();

/// A flow table with the figure it reproduces, for data-driven checks.
struct NamedFlow {
  std::string name;
  std::vector<FlowStep> steps;
};

/// Every declared flow (both Fig. 9 variants included), for vgprs_lint's
/// flow-conformance sweep.
std::vector<NamedFlow> all_conformance_flows();

/// Who recovers a request when its response never arrives.  Every
/// request-type message in the flow tables must appear here: either with
/// the mechanism that retransmits it ("retransmitter" = capped exponential
/// backoff via Retransmitter, "guard-retry" = the sender's procedure guard
/// re-sends the last message), or as "exempt" with the reason recovery is
/// owned elsewhere.  vgprs_lint enforces coverage and rejects stale rows.
struct RetransmissionPolicy {
  std::string message;    // registry wire name of the request
  std::string owner;      // node family that arms the recovery
  std::string mechanism;  // "retransmitter", "guard-retry", or "exempt"
  std::string reason;     // required (and only meaningful) for "exempt"
};

const std::vector<RetransmissionPolicy>& all_retransmission_policies();

}  // namespace vgprs
