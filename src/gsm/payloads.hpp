// Payload structs shared by the Um / Abis / A interface message catalogs
// (the same information element travels MS -> BTS -> BSC -> (V)MSC with a
// different protocol wrapper on each hop) and by the MAP message catalog.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "common/ids.hpp"
#include "gsm/types.hpp"

namespace vgprs {

/// Why an MS requests a dedicated channel.
enum class ChannelCause : std::uint8_t {
  kLocationUpdate = 0,
  kOriginatingCall = 1,
  kPageResponse = 2,
};

struct ChannelRequestInfo {
  Imsi imsi;
  ChannelCause cause = ChannelCause::kLocationUpdate;

  void encode(ByteWriter& w) const {
    w.imsi(imsi);
    w.u8(static_cast<std::uint8_t>(cause));
  }
  Status decode(ByteReader& r) {
    imsi = r.imsi();
    cause = static_cast<ChannelCause>(r.u8());
    return r.status();
  }
  [[nodiscard]] std::string describe() const {
    return "{" + imsi.to_string() + "}";
  }
};

struct ChannelAssignmentInfo {
  Imsi imsi;
  std::uint16_t channel = 0;

  void encode(ByteWriter& w) const {
    w.imsi(imsi);
    w.u16(channel);
  }
  Status decode(ByteReader& r) {
    imsi = r.imsi();
    channel = r.u16();
    return r.status();
  }
  [[nodiscard]] std::string describe() const {
    return "{" + imsi.to_string() + " ch=" + std::to_string(channel) + "}";
  }
};

struct LocationUpdateInfo {
  Imsi imsi;
  Tmsi tmsi;
  LocationAreaId lai;
  CellId cell;

  void encode(ByteWriter& w) const {
    w.imsi(imsi);
    w.tmsi(tmsi);
    w.lai(lai);
    w.cell(cell);
  }
  Status decode(ByteReader& r) {
    imsi = r.imsi();
    tmsi = r.tmsi();
    lai = r.lai();
    cell = r.cell();
    return r.status();
  }
  [[nodiscard]] std::string describe() const {
    return "{" + imsi.to_string() + " " + lai.to_string() + "}";
  }
};

struct LocationUpdateAcceptInfo {
  Imsi imsi;
  LocationAreaId lai;
  Tmsi new_tmsi;

  void encode(ByteWriter& w) const {
    w.imsi(imsi);
    w.lai(lai);
    w.tmsi(new_tmsi);
  }
  Status decode(ByteReader& r) {
    imsi = r.imsi();
    lai = r.lai();
    new_tmsi = r.tmsi();
    return r.status();
  }
  [[nodiscard]] std::string describe() const {
    return "{" + imsi.to_string() + " tmsi=" + new_tmsi.to_string() + "}";
  }
};

struct AuthChallengeInfo {
  Imsi imsi;
  std::uint64_t rand = 0;

  void encode(ByteWriter& w) const {
    w.imsi(imsi);
    w.u64(rand);
  }
  Status decode(ByteReader& r) {
    imsi = r.imsi();
    rand = r.u64();
    return r.status();
  }
  [[nodiscard]] std::string describe() const {
    return "{" + imsi.to_string() + "}";
  }
};

struct AuthResponseInfo {
  Imsi imsi;
  std::uint32_t sres = 0;

  void encode(ByteWriter& w) const {
    w.imsi(imsi);
    w.u32(sres);
  }
  Status decode(ByteReader& r) {
    imsi = r.imsi();
    sres = r.u32();
    return r.status();
  }
  [[nodiscard]] std::string describe() const {
    return "{" + imsi.to_string() + "}";
  }
};

struct CipherModeInfo {
  Imsi imsi;
  std::uint8_t algorithm = 1;  // A5/1

  void encode(ByteWriter& w) const {
    w.imsi(imsi);
    w.u8(algorithm);
  }
  Status decode(ByteReader& r) {
    imsi = r.imsi();
    algorithm = r.u8();
    return r.status();
  }
  [[nodiscard]] std::string describe() const {
    return "{" + imsi.to_string() + " A5/" + std::to_string(algorithm) + "}";
  }
};

struct SubscriberRefInfo {
  Imsi imsi;

  void encode(ByteWriter& w) const { w.imsi(imsi); }
  Status decode(ByteReader& r) {
    imsi = r.imsi();
    return r.status();
  }
  [[nodiscard]] std::string describe() const {
    return "{" + imsi.to_string() + "}";
  }
};

/// CM service request: MS asks the network for call-control service.
struct CmServiceInfo {
  Imsi imsi;
  Tmsi tmsi;
  std::uint8_t service = 1;  // 1 = MO call establishment

  void encode(ByteWriter& w) const {
    w.imsi(imsi);
    w.tmsi(tmsi);
    w.u8(service);
  }
  Status decode(ByteReader& r) {
    imsi = r.imsi();
    tmsi = r.tmsi();
    service = r.u8();
    return r.status();
  }
  [[nodiscard]] std::string describe() const {
    return "{" + imsi.to_string() + "}";
  }
};

struct CallSetupInfo {
  Imsi imsi;  // the MS this leg concerns
  CallRef call_ref;
  Msisdn calling;
  Msisdn called;

  void encode(ByteWriter& w) const {
    w.imsi(imsi);
    w.call_ref(call_ref);
    w.msisdn(calling);
    w.msisdn(called);
  }
  Status decode(ByteReader& r) {
    imsi = r.imsi();
    call_ref = r.call_ref();
    calling = r.msisdn();
    called = r.msisdn();
    return r.status();
  }
  [[nodiscard]] std::string describe() const {
    return "{" + call_ref.to_string() + " " + calling.to_string() + " -> " +
           called.to_string() + "}";
  }
};

struct CallRefInfo {
  Imsi imsi;
  CallRef call_ref;

  void encode(ByteWriter& w) const {
    w.imsi(imsi);
    w.call_ref(call_ref);
  }
  Status decode(ByteReader& r) {
    imsi = r.imsi();
    call_ref = r.call_ref();
    return r.status();
  }
  [[nodiscard]] std::string describe() const {
    return "{" + call_ref.to_string() + "}";
  }
};

struct CallDisconnectInfo {
  Imsi imsi;
  CallRef call_ref;
  ClearCause cause = ClearCause::kNormal;

  void encode(ByteWriter& w) const {
    w.imsi(imsi);
    w.call_ref(call_ref);
    w.u8(static_cast<std::uint8_t>(cause));
  }
  Status decode(ByteReader& r) {
    imsi = r.imsi();
    call_ref = r.call_ref();
    cause = static_cast<ClearCause>(r.u8());
    return r.status();
  }
  [[nodiscard]] std::string describe() const {
    return "{" + call_ref.to_string() +
           " cause=" + std::to_string(static_cast<int>(cause)) + "}";
  }
};

struct PagingInfo {
  Imsi imsi;
  Tmsi tmsi;

  void encode(ByteWriter& w) const {
    w.imsi(imsi);
    w.tmsi(tmsi);
  }
  Status decode(ByteReader& r) {
    imsi = r.imsi();
    tmsi = r.tmsi();
    return r.status();
  }
  [[nodiscard]] std::string describe() const {
    return "{" + imsi.to_string() + "}";
  }
};

struct PagingResponseInfo {
  Imsi imsi;
  Tmsi tmsi;
  CellId cell;

  void encode(ByteWriter& w) const {
    w.imsi(imsi);
    w.tmsi(tmsi);
    w.cell(cell);
  }
  Status decode(ByteReader& r) {
    imsi = r.imsi();
    tmsi = r.tmsi();
    cell = r.cell();
    return r.status();
  }
  [[nodiscard]] std::string describe() const {
    return "{" + imsi.to_string() + " " + cell.to_string() + "}";
  }
};

/// Traffic-channel assignment (TCH) for the voice leg.
struct AssignmentInfo {
  Imsi imsi;
  CallRef call_ref;
  std::uint16_t channel = 0;

  void encode(ByteWriter& w) const {
    w.imsi(imsi);
    w.call_ref(call_ref);
    w.u16(channel);
  }
  Status decode(ByteReader& r) {
    imsi = r.imsi();
    call_ref = r.call_ref();
    channel = r.u16();
    return r.status();
  }
  [[nodiscard]] std::string describe() const {
    return "{" + call_ref.to_string() + " tch=" + std::to_string(channel) +
           "}";
  }
};

struct HandoverRequiredInfo {
  Imsi imsi;
  CallRef call_ref;
  CellId target_cell;

  void encode(ByteWriter& w) const {
    w.imsi(imsi);
    w.call_ref(call_ref);
    w.cell(target_cell);
  }
  Status decode(ByteReader& r) {
    imsi = r.imsi();
    call_ref = r.call_ref();
    target_cell = r.cell();
    return r.status();
  }
  [[nodiscard]] std::string describe() const {
    return "{" + imsi.to_string() + " -> " + target_cell.to_string() + "}";
  }
};

struct HandoverChannelInfo {
  Imsi imsi;
  CallRef call_ref;
  CellId target_cell;
  std::uint16_t channel = 0;

  void encode(ByteWriter& w) const {
    w.imsi(imsi);
    w.call_ref(call_ref);
    w.cell(target_cell);
    w.u16(channel);
  }
  Status decode(ByteReader& r) {
    imsi = r.imsi();
    call_ref = r.call_ref();
    target_cell = r.cell();
    channel = r.u16();
    return r.status();
  }
  [[nodiscard]] std::string describe() const {
    return "{" + imsi.to_string() + " -> " + target_cell.to_string() +
           " ch=" + std::to_string(channel) + "}";
  }
};

struct HandoverRefInfo {
  Imsi imsi;
  CallRef call_ref;

  void encode(ByteWriter& w) const {
    w.imsi(imsi);
    w.call_ref(call_ref);
  }
  Status decode(ByteReader& r) {
    imsi = r.imsi();
    call_ref = r.call_ref();
    return r.status();
  }
  [[nodiscard]] std::string describe() const {
    return "{" + imsi.to_string() + " " + call_ref.to_string() + "}";
  }
};

struct RejectInfo {
  Imsi imsi;
  std::uint8_t cause = 0;

  void encode(ByteWriter& w) const {
    w.imsi(imsi);
    w.u8(cause);
  }
  Status decode(ByteReader& r) {
    imsi = r.imsi();
    cause = r.u8();
    return r.status();
  }
  [[nodiscard]] std::string describe() const {
    return "{" + imsi.to_string() + " cause=" + std::to_string(cause) + "}";
  }
};

/// One circuit-switched voice frame on the TCH / TRAU path (GSM FR: 33
/// bytes every 20 ms).  `origin_us` lets the receiving end compute
/// mouth-to-ear latency for the Fig. 3 voice-path benchmark.
struct VoiceFrameInfo {
  Imsi imsi;
  CallRef call_ref;
  bool uplink = true;  // MS -> network when true
  std::uint32_t seq = 0;
  std::int64_t origin_us = 0;
  std::uint16_t codec_bytes = 33;

  void encode(ByteWriter& w) const {
    w.imsi(imsi);
    w.call_ref(call_ref);
    w.boolean(uplink);
    w.u32(seq);
    w.u64(static_cast<std::uint64_t>(origin_us));
    w.u16(codec_bytes);
  }
  Status decode(ByteReader& r) {
    imsi = r.imsi();
    call_ref = r.call_ref();
    uplink = r.boolean();
    seq = r.u32();
    origin_us = static_cast<std::int64_t>(r.u64());
    codec_bytes = r.u16();
    return r.status();
  }
  [[nodiscard]] std::string describe() const {
    return "{" + call_ref.to_string() + " #" + std::to_string(seq) + "}";
  }
};

// ---------------------------------------------------------------------------
// MAP payloads
// ---------------------------------------------------------------------------

struct MapAuthInfoAckInfo {
  Imsi imsi;
  std::vector<AuthTriplet> triplets;

  void encode(ByteWriter& w) const {
    w.imsi(imsi);
    w.u8(static_cast<std::uint8_t>(triplets.size()));
    for (const auto& t : triplets) t.encode(w);
  }
  Status decode(ByteReader& r) {
    imsi = r.imsi();
    std::uint8_t n = r.u8();
    triplets.clear();
    for (std::uint8_t i = 0; i < n; ++i) triplets.push_back(AuthTriplet::decode(r));
    return r.status();
  }
  [[nodiscard]] std::string describe() const {
    return "{" + imsi.to_string() + " x" + std::to_string(triplets.size()) +
           "}";
  }
};

struct MapUpdateLocationAreaInfo {
  Imsi imsi;
  LocationAreaId lai;
  std::string msc_name;  // serving (V)MSC address

  void encode(ByteWriter& w) const {
    w.imsi(imsi);
    w.lai(lai);
    w.str(msc_name);
  }
  Status decode(ByteReader& r) {
    imsi = r.imsi();
    lai = r.lai();
    msc_name = r.str();
    return r.status();
  }
  [[nodiscard]] std::string describe() const {
    return "{" + imsi.to_string() + " " + lai.to_string() + "}";
  }
};

struct MapResultInfo {
  Imsi imsi;
  bool success = true;
  std::uint8_t cause = 0;
  Tmsi new_tmsi;
  Msisdn msisdn;  // subscriber's number (VMSC uses it as the H.323 alias)

  void encode(ByteWriter& w) const {
    w.imsi(imsi);
    w.boolean(success);
    w.u8(cause);
    w.tmsi(new_tmsi);
    w.msisdn(msisdn);
  }
  Status decode(ByteReader& r) {
    imsi = r.imsi();
    success = r.boolean();
    cause = r.u8();
    new_tmsi = r.tmsi();
    msisdn = r.msisdn();
    return r.status();
  }
  [[nodiscard]] std::string describe() const {
    return std::string("{") + imsi.to_string() + (success ? " ok" : " fail") +
           "}";
  }
};

struct MapUpdateLocationInfo {
  Imsi imsi;
  std::string vlr_name;
  std::string msc_name;

  void encode(ByteWriter& w) const {
    w.imsi(imsi);
    w.str(vlr_name);
    w.str(msc_name);
  }
  Status decode(ByteReader& r) {
    imsi = r.imsi();
    vlr_name = r.str();
    msc_name = r.str();
    return r.status();
  }
  [[nodiscard]] std::string describe() const {
    return "{" + imsi.to_string() + " vlr=" + vlr_name + "}";
  }
};

struct MapInsertSubsDataInfo {
  Imsi imsi;
  SubscriberProfile profile;

  void encode(ByteWriter& w) const {
    w.imsi(imsi);
    profile.encode(w);
  }
  Status decode(ByteReader& r) {
    imsi = r.imsi();
    profile = SubscriberProfile::decode(r);
    return r.status();
  }
  [[nodiscard]] std::string describe() const {
    return "{" + imsi.to_string() + " " + profile.msisdn.to_string() + "}";
  }
};

struct MapOutgoingCallInfo {
  Imsi imsi;
  Msisdn called;

  void encode(ByteWriter& w) const {
    w.imsi(imsi);
    w.msisdn(called);
  }
  Status decode(ByteReader& r) {
    imsi = r.imsi();
    called = r.msisdn();
    return r.status();
  }
  [[nodiscard]] std::string describe() const {
    return "{" + imsi.to_string() + " -> " + called.to_string() + "}";
  }
};

struct MapSriInfo {
  Msisdn msisdn;
  std::string gmsc_name;

  void encode(ByteWriter& w) const {
    w.msisdn(msisdn);
    w.str(gmsc_name);
  }
  Status decode(ByteReader& r) {
    msisdn = r.msisdn();
    gmsc_name = r.str();
    return r.status();
  }
  [[nodiscard]] std::string describe() const {
    return "{" + msisdn.to_string() + "}";
  }
};

struct MapSriAckInfo {
  Msisdn msisdn;
  Imsi imsi;
  Msrn msrn;
  std::string serving_msc;
  bool found = false;

  void encode(ByteWriter& w) const {
    w.msisdn(msisdn);
    w.imsi(imsi);
    w.msrn(msrn);
    w.str(serving_msc);
    w.boolean(found);
  }
  Status decode(ByteReader& r) {
    msisdn = r.msisdn();
    imsi = r.imsi();
    msrn = r.msrn();
    serving_msc = r.str();
    found = r.boolean();
    return r.status();
  }
  [[nodiscard]] std::string describe() const {
    return "{" + msisdn.to_string() + (found ? " @" + serving_msc : " ?") +
           "}";
  }
};

struct MapPrnInfo {
  Imsi imsi;
  Msisdn msisdn;

  void encode(ByteWriter& w) const {
    w.imsi(imsi);
    w.msisdn(msisdn);
  }
  Status decode(ByteReader& r) {
    imsi = r.imsi();
    msisdn = r.msisdn();
    return r.status();
  }
  [[nodiscard]] std::string describe() const {
    return "{" + imsi.to_string() + "}";
  }
};

struct MapPrnAckInfo {
  Imsi imsi;
  Msrn msrn;

  void encode(ByteWriter& w) const {
    w.imsi(imsi);
    w.msrn(msrn);
  }
  Status decode(ByteReader& r) {
    imsi = r.imsi();
    msrn = r.msrn();
    return r.status();
  }
  [[nodiscard]] std::string describe() const {
    return "{" + imsi.to_string() + " " + msrn.to_string() + "}";
  }
};

struct MapIncomingCallInfo {
  Msrn msrn;

  void encode(ByteWriter& w) const { w.msrn(msrn); }
  Status decode(ByteReader& r) {
    msrn = r.msrn();
    return r.status();
  }
  [[nodiscard]] std::string describe() const {
    return "{" + msrn.to_string() + "}";
  }
};

struct MapIncomingCallAckInfo {
  Msrn msrn;
  Imsi imsi;
  Msisdn msisdn;
  bool found = false;

  void encode(ByteWriter& w) const {
    w.msrn(msrn);
    w.imsi(imsi);
    w.msisdn(msisdn);
    w.boolean(found);
  }
  Status decode(ByteReader& r) {
    msrn = r.msrn();
    imsi = r.imsi();
    msisdn = r.msisdn();
    found = r.boolean();
    return r.status();
  }
  [[nodiscard]] std::string describe() const {
    return "{" + msrn.to_string() + " -> " + imsi.to_string() + "}";
  }
};

struct MapGprsRoutingAckInfo {
  Imsi imsi;
  std::string sgsn_name;
  bool found = false;

  void encode(ByteWriter& w) const {
    w.imsi(imsi);
    w.str(sgsn_name);
    w.boolean(found);
  }
  Status decode(ByteReader& r) {
    imsi = r.imsi();
    sgsn_name = r.str();
    found = r.boolean();
    return r.status();
  }
  [[nodiscard]] std::string describe() const {
    return "{" + imsi.to_string() + (found ? " @" + sgsn_name : " ?") + "}";
  }
};

struct MapPrepareHandoverInfo {
  Imsi imsi;
  CallRef call_ref;
  CellId target_cell;
  std::string anchor_msc;

  void encode(ByteWriter& w) const {
    w.imsi(imsi);
    w.call_ref(call_ref);
    w.cell(target_cell);
    w.str(anchor_msc);
  }
  Status decode(ByteReader& r) {
    imsi = r.imsi();
    call_ref = r.call_ref();
    target_cell = r.cell();
    anchor_msc = r.str();
    return r.status();
  }
  [[nodiscard]] std::string describe() const {
    return "{" + imsi.to_string() + " -> " + target_cell.to_string() + "}";
  }
};

struct MapPrepareHandoverAckInfo {
  Imsi imsi;
  CallRef call_ref;
  std::uint16_t channel = 0;
  bool success = true;

  void encode(ByteWriter& w) const {
    w.imsi(imsi);
    w.call_ref(call_ref);
    w.u16(channel);
    w.boolean(success);
  }
  Status decode(ByteReader& r) {
    imsi = r.imsi();
    call_ref = r.call_ref();
    channel = r.u16();
    success = r.boolean();
    return r.status();
  }
  [[nodiscard]] std::string describe() const {
    return "{" + imsi.to_string() + " ch=" + std::to_string(channel) + "}";
  }
};

struct MapGprsLocationInfo {
  Imsi imsi;
  std::string sgsn_name;

  void encode(ByteWriter& w) const {
    w.imsi(imsi);
    w.str(sgsn_name);
  }
  Status decode(ByteReader& r) {
    imsi = r.imsi();
    sgsn_name = r.str();
    return r.status();
  }
  [[nodiscard]] std::string describe() const {
    return "{" + imsi.to_string() + " sgsn=" + sgsn_name + "}";
  }
};

}  // namespace vgprs
