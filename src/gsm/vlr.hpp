// Visitor Location Register: per-visited-network subscriber cache.  Handles
// location updating toward the HLR, TMSI allocation, authentication-vector
// caching, outgoing-call authorization and roaming-number allocation.
#pragma once

#include <cstdint>
#include <string>

#include "gsm/messages.hpp"
#include "sim/network.hpp"
#include "sim/subscriber_pool.hpp"

namespace vgprs {

class Vlr final : public Node {
 public:
  struct Config {
    std::string hlr_name;
    std::uint16_t country_code = 0;  // calls outside it are international
    std::uint64_t msrn_prefix = 0;   // roaming numbers: prefix + counter
  };

  struct VisitorRecord {
    Tmsi tmsi;
    LocationAreaId lai;
    std::string msc_name;
    SubscriberProfile profile;
    bool profile_valid = false;
    bool registered = false;
    // The HLR hands out batches of 3 and the VLR refills only when empty,
    // so the inline ring (capacity 6) never overflows and the registration
    // hot path carries no per-visitor deque allocation.
    InlineQueue<AuthTriplet, 6> triplets;
  };

  Vlr(std::string name, Config config)
      : Node(std::move(name)), config_(std::move(config)) {}

  [[nodiscard]] const VisitorRecord* visitor(Imsi imsi) const;
  [[nodiscard]] std::size_t visitor_count() const { return records_.size(); }

  void on_message(const Envelope& env) override;
  /// VLR restart: the visitor cache, roaming-number map and in-flight MAP
  /// request state are volatile.  The allocation counters keep advancing so
  /// TMSIs/MSRNs handed out before the crash are never reissued.
  void on_restart() override {
    records_.clear();
    msrn_map_.clear();
    pending_auth_.clear();
    pending_ula_.clear();
  }

 private:
  [[nodiscard]] NodeId hlr() const;
  void reply_auth_info(NodeId to, Imsi imsi);

  Config config_;
  SubscriberTable<Imsi, VisitorRecord> records_;
  SubscriberTable<Msrn, Imsi> msrn_map_;
  // in-flight requests keyed by IMSI
  SubscriberTable<Imsi, NodeId> pending_auth_;
  SubscriberTable<Imsi, NodeId> pending_ula_;
  std::uint32_t next_tmsi_ = 0x0100;
  std::uint64_t next_msrn_ = 1;
};

}  // namespace vgprs
