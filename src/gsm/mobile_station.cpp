#include "gsm/mobile_station.hpp"

#include <stdexcept>

#include "common/log.hpp"

namespace vgprs {

namespace {
constexpr std::uint64_t cookie_of(MobileStation::State, std::uint8_t kind,
                                  std::uint64_t epoch) {
  return (std::uint64_t{kind} << 56) | (epoch & 0x00FFFFFFFFFFFFFFULL);
}
}  // namespace

void MobileStation::enter(State s) {
  state_ = s;
  ++epoch_;
}

void MobileStation::arm_guard() {
  set_timer(config_.retry_interval,
            cookie_of(state_, static_cast<std::uint8_t>(TimerKind::kGuard),
                      epoch_));
}

void MobileStation::start_step(MessagePtr msg) {
  last_proc_msg_ = msg;
  retries_left_ = config_.max_retries;
  send(bts(), std::move(msg));
  arm_guard();
}

NodeId MobileStation::bts() const {
  return bts_by_name(serving_bts_.empty() ? config_.bts_name : serving_bts_);
}

NodeId MobileStation::bts_by_name(const std::string& bts_name) const {
  Node* n = net().node_by_name(bts_name);
  if (n == nullptr) throw std::logic_error(name() + ": no BTS " + bts_name);
  return n->id();
}

void MobileStation::close_state_span(SpanOutcome outcome) {
  SpanTracker& spans = net().spans();
  if (!spans.enabled()) return;
  const std::uint64_t corr = config_.imsi.value();
  switch (state_) {
    case State::kRegistering:
      spans.close(SpanKind::kRegistration, corr, outcome, now());
      break;
    case State::kMoChannel:
    case State::kMoService:
    case State::kMoSetup:
    case State::kMoRinging:
      spans.close(SpanKind::kOrigination, corr, outcome, now());
      break;
    case State::kReleasing:
      spans.close(SpanKind::kRelease, corr, outcome, now());
      break;
    default:
      break;  // MT-side and handoff spans belong to the MSC
  }
}

void MobileStation::fail(const std::string& reason) {
  VG_WARN("ms", name() << ": " << reason);
  close_state_span(reason.starts_with("guard timeout")
                       ? SpanOutcome::kTimeout
                       : SpanOutcome::kRejected);
  enter(tmsi_.valid() ? State::kIdle : State::kDetached);
  if (on_failure) on_failure(reason);
}

void MobileStation::power_on() {
  if (state_ != State::kDetached) return;
  enter(State::kRegistering);
  net().spans().open(SpanKind::kRegistration, config_.imsi.value(), name(),
                     now());
  auto msg = pool_message<UmLocationUpdateRequest>();
  msg->imsi = config_.imsi;
  msg->tmsi = tmsi_;
  start_step(std::move(msg));
}

void MobileStation::power_off() {
  if (state_ == State::kDetached) return;
  if (state_ != State::kIdle) hangup();
  auto detach = pool_message<UmImsiDetach>();
  detach->imsi = config_.imsi;
  send(bts(), std::move(detach));
  enter(State::kDetached);
}

void MobileStation::move_to(const std::string& bts_name) {
  serving_bts_ = bts_name;
  if (state_ == State::kIdle) {
    // Movement-triggered location update: same procedure as power-on, but
    // the MS identifies with its TMSI.
    enter(State::kRegistering);
    net().spans().open(SpanKind::kRegistration, config_.imsi.value(), name(),
                       now());
    auto msg = pool_message<UmLocationUpdateRequest>();
    msg->imsi = config_.imsi;
    msg->tmsi = tmsi_;
    start_step(std::move(msg));
  }
}

void MobileStation::dial(Msisdn called) {
  if (state_ != State::kIdle) {
    fail("dial while " + std::string(to_string(state_)));
    return;
  }
  pending_called_ = called;
  call_ref_ = CallRef((config_.imsi.value() & 0xFFFF) << 12 | ++call_seq_);
  enter(State::kMoChannel);
  net().spans().open(SpanKind::kOrigination, config_.imsi.value(), name(),
                     now());
  auto msg = pool_message<UmChannelRequest>();
  msg->imsi = config_.imsi;
  msg->cause = ChannelCause::kOriginatingCall;
  start_step(std::move(msg));
}

void MobileStation::answer() {
  if (state_ != State::kMtRinging) return;
  auto msg = pool_message<UmConnect>();
  msg->imsi = config_.imsi;
  msg->call_ref = call_ref_;
  start_step(std::move(msg));
}

void MobileStation::hangup() {
  if (state_ != State::kConnected && state_ != State::kMoRinging &&
      state_ != State::kMoSetup) {
    return;
  }
  // Abandoning before connect: the origination span is still open and no
  // answer will ever close it.  (From kConnected this is a no-op.)
  close_state_span(SpanOutcome::kRejected);
  enter(State::kReleasing);
  net().spans().open(SpanKind::kRelease, config_.imsi.value(), name(), now());
  auto msg = pool_message<UmDisconnect>();
  msg->imsi = config_.imsi;
  msg->call_ref = call_ref_;
  msg->cause = ClearCause::kNormal;
  start_step(std::move(msg));
}

void MobileStation::start_voice(std::uint32_t count, SimDuration interval) {
  voice_remaining_ = count;
  voice_interval_ = interval;
  if (state_ == State::kConnected) send_voice_frame();
}

void MobileStation::send_voice_frame() {
  if (voice_remaining_ == 0 || state_ != State::kConnected) return;
  --voice_remaining_;
  auto frame = pool_message<UmVoiceFrame>();
  frame->imsi = config_.imsi;
  frame->call_ref = call_ref_;
  frame->uplink = true;
  frame->seq = ++voice_seq_;
  frame->origin_us = now().count_micros();
  send(bts(), std::move(frame));
  if (voice_remaining_ > 0) {
    set_timer(voice_interval_,
              cookie_of(state_, static_cast<std::uint8_t>(TimerKind::kVoice),
                        epoch_));
  }
}

void MobileStation::add_neighbor_bts(CellId cell, std::string bts_name) {
  neighbor_bts_[cell] = std::move(bts_name);
}

void MobileStation::on_timer(TimerId, std::uint64_t cookie) {
  auto kind = static_cast<TimerKind>(cookie >> 56);
  std::uint64_t epoch = cookie & 0x00FFFFFFFFFFFFFFULL;
  switch (kind) {
    case TimerKind::kAnswer:
      if (epoch == epoch_ && state_ == State::kMtRinging) answer();
      break;
    case TimerKind::kGuard:
      if (epoch == epoch_) {
        // Still in the state that armed supervision: the last message (or
        // its answer) was lost.  Retransmit, LAPDm-style, then give up.
        if (retries_left_ > 0 && last_proc_msg_ != nullptr) {
          --retries_left_;
          send(bts(), MessagePtr(last_proc_msg_->clone()));
          arm_guard();
        } else {
          fail(std::string("guard timeout in state ") + to_string(state_));
        }
      }
      break;
    case TimerKind::kVoice:
      // Voice cadence survives within the connected state (epoch unchanged).
      if (epoch == epoch_) send_voice_frame();
      break;
  }
}

void MobileStation::on_message(const Envelope& env) {
  const Message& msg = *env.msg;

  // -- security procedures: answered in any state ----------------------------
  if (const auto* auth = dynamic_cast<const UmAuthRequest*>(&msg)) {
    auto rsp = pool_message<UmAuthResponse>();
    rsp->imsi = config_.imsi;
    rsp->sres = gsm_a3_sres(config_.ki, auth->rand);
    send(env.from, std::move(rsp));
    return;
  }
  if (dynamic_cast<const UmCipherModeCommand*>(&msg) != nullptr) {
    auto rsp = pool_message<UmCipherModeComplete>();
    rsp->imsi = config_.imsi;
    send(env.from, std::move(rsp));
    return;
  }

  if (const auto* rej = dynamic_cast<const UmLocationUpdateReject*>(&msg)) {
    if (state_ == State::kRegistering) {
      close_state_span(SpanOutcome::kRejected);
      enter(State::kDetached);
      if (on_failure) {
        on_failure("location update rejected, cause " +
                   std::to_string(rej->cause));
      }
    }
    return;
  }
  if (const auto* rej = dynamic_cast<const UmCmServiceReject*>(&msg)) {
    if (state_ == State::kMoService || state_ == State::kMoSetup) {
      close_state_span(SpanOutcome::kRejected);
      enter(State::kIdle);
      if (on_failure) {
        on_failure("CM service rejected, cause " +
                   std::to_string(rej->cause));
      }
      if (rej->cause == 4) {
        // GSM 04.08 cause #4 "IMSI unknown in VLR": the network lost our
        // registration (VLR or switch restart).  Delete the TMSI and run
        // location updating again so service can resume.
        tmsi_ = Tmsi{};
        ++net().metrics().counter("recovery/reregistrations");
        enter(State::kRegistering);
        net().spans().open(SpanKind::kRegistration, config_.imsi.value(),
                           name(), now());
        auto lu = pool_message<UmLocationUpdateRequest>();
        lu->imsi = config_.imsi;
        lu->tmsi = tmsi_;
        start_step(std::move(lu));
      }
    }
    return;
  }

  // -- registration -----------------------------------------------------------
  if (const auto* acc = dynamic_cast<const UmLocationUpdateAccept*>(&msg)) {
    if (state_ != State::kRegistering) return;
    close_state_span(SpanOutcome::kOk);
    tmsi_ = acc->new_tmsi;
    enter(State::kIdle);
    if (on_registered) on_registered();
    return;
  }

  // -- channel management ------------------------------------------------------
  if (dynamic_cast<const UmImmediateAssignment*>(&msg) != nullptr) {
    if (state_ == State::kMoChannel) {
      enter(State::kMoService);
      auto req = pool_message<UmCmServiceRequest>();
      req->imsi = config_.imsi;
      req->tmsi = tmsi_;
      req->service = 1;
      start_step(std::move(req));
    } else if (state_ == State::kMtChannel) {
      enter(State::kMtPaged);
      auto rsp = pool_message<UmPagingResponse>();
      rsp->imsi = config_.imsi;
      rsp->tmsi = tmsi_;
      start_step(std::move(rsp));
    }
    return;
  }
  if (dynamic_cast<const UmCmServiceAccept*>(&msg) != nullptr) {
    if (state_ != State::kMoService) return;
    enter(State::kMoSetup);
    auto setup = pool_message<UmSetup>();
    setup->imsi = config_.imsi;
    setup->call_ref = call_ref_;
    setup->calling = config_.msisdn;
    setup->called = pending_called_;
    start_step(std::move(setup));
    return;
  }
  if (const auto* asg = dynamic_cast<const UmAssignmentCommand*>(&msg)) {
    auto done = pool_message<UmAssignmentComplete>();
    done->imsi = config_.imsi;
    done->call_ref = asg->call_ref;
    done->channel = asg->channel;
    send(bts(), std::move(done));
    return;
  }

  // -- mobile-terminated call ---------------------------------------------------
  if (const auto* page = dynamic_cast<const UmPagingRequest*>(&msg)) {
    bool mine = page->imsi == config_.imsi ||
                (page->tmsi.valid() && page->tmsi == tmsi_);
    if (!mine || state_ != State::kIdle) return;
    enter(State::kMtChannel);
    auto req = pool_message<UmChannelRequest>();
    req->imsi = config_.imsi;
    req->cause = ChannelCause::kPageResponse;
    start_step(std::move(req));
    return;
  }
  if (const auto* setup = dynamic_cast<const UmSetup*>(&msg)) {
    if (state_ != State::kMtPaged) return;
    call_ref_ = setup->call_ref;
    enter(State::kMtRinging);
    if (on_incoming) on_incoming(call_ref_, setup->calling);
    auto alert = pool_message<UmAlerting>();
    alert->imsi = config_.imsi;
    alert->call_ref = call_ref_;
    send(bts(), std::move(alert));
    if (config_.auto_answer) {
      set_timer(config_.answer_delay,
                cookie_of(state_,
                          static_cast<std::uint8_t>(TimerKind::kAnswer),
                          epoch_));
    }
    return;
  }

  // -- call progress (MO side) ---------------------------------------------------
  if (dynamic_cast<const UmCallProceeding*>(&msg) != nullptr) {
    return;  // informational
  }
  if (dynamic_cast<const UmAlerting*>(&msg) != nullptr) {
    if (state_ == State::kMoSetup) {
      enter(State::kMoRinging);
      if (on_ringback) on_ringback(call_ref_);
    }
    return;
  }
  if (dynamic_cast<const UmConnect*>(&msg) != nullptr) {
    if (state_ == State::kMoRinging || state_ == State::kMoSetup) {
      close_state_span(SpanOutcome::kOk);
      auto ack = pool_message<UmConnectAck>();
      ack->imsi = config_.imsi;
      ack->call_ref = call_ref_;
      send(bts(), std::move(ack));
      enter(State::kConnected);
      if (on_connected) on_connected(call_ref_);
      if (voice_remaining_ > 0) send_voice_frame();
    }
    return;
  }
  if (dynamic_cast<const UmConnectAck*>(&msg) != nullptr) {
    if (state_ == State::kMtRinging) {
      enter(State::kConnected);
      if (on_connected) on_connected(call_ref_);
      if (voice_remaining_ > 0) send_voice_frame();
    }
    return;
  }

  // -- call clearing ----------------------------------------------------------------
  if (const auto* disc = dynamic_cast<const UmDisconnect*>(&msg)) {
    // Network-initiated clearing: legal in any in-call state, including
    // the MT pre-ring states (the caller may abandon during paging).
    if (state_ == State::kConnected || state_ == State::kMtRinging ||
        state_ == State::kMoRinging || state_ == State::kMoSetup ||
        state_ == State::kMoService || state_ == State::kMtPaged ||
        state_ == State::kMtChannel) {
      // Clearing mid-setup aborts the MO origination in flight.
      close_state_span(SpanOutcome::kRejected);
      enter(State::kReleasing);
      net().spans().open(SpanKind::kRelease, config_.imsi.value(), name(),
                         now());
      auto rel = pool_message<UmRelease>();
      rel->imsi = config_.imsi;
      rel->call_ref = disc->call_ref;
      start_step(std::move(rel));
    }
    return;
  }
  if (const auto* rel = dynamic_cast<const UmRelease*>(&msg)) {
    // Network confirms MS-initiated disconnect.
    if (state_ == State::kReleasing) {
      close_state_span(SpanOutcome::kOk);
      auto done = pool_message<UmReleaseComplete>();
      done->imsi = config_.imsi;
      done->call_ref = rel->call_ref;
      send(bts(), std::move(done));
      enter(State::kIdle);
      if (on_released) on_released(rel->call_ref);
    }
    return;
  }
  if (const auto* rc = dynamic_cast<const UmReleaseComplete*>(&msg)) {
    if (state_ == State::kReleasing) {
      close_state_span(SpanOutcome::kOk);
      enter(State::kIdle);
      if (on_released) on_released(rc->call_ref);
    }
    return;
  }

  // -- handover ----------------------------------------------------------------------
  if (const auto* ho = dynamic_cast<const UmHandoverCommand*>(&msg)) {
    auto it = neighbor_bts_.find(ho->target_cell);
    if (it == neighbor_bts_.end()) {
      fail("handover to unknown cell " + ho->target_cell.to_string());
      return;
    }
    serving_bts_ = it->second;
    auto access = pool_message<UmHandoverAccess>();
    access->imsi = config_.imsi;
    access->call_ref = ho->call_ref;
    send(bts(), access);
    auto complete = pool_message<UmHandoverComplete>();
    complete->imsi = config_.imsi;
    complete->call_ref = ho->call_ref;
    send(bts(), std::move(complete));
    return;
  }

  // -- voice --------------------------------------------------------------------------
  if (const auto* vf = dynamic_cast<const UmVoiceFrame*>(&msg)) {
    ++voice_rx_;
    voice_latency_.add(
        SimDuration::micros(now().count_micros() - vf->origin_us));
    return;
  }

  VG_DEBUG("ms", name() << ": ignoring " << msg.name() << " in state "
                        << to_string(state_));
}

}  // namespace vgprs
