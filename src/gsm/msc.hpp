// GsmMsc: the classic circuit-switched MSC the VMSC replaces.  It serves
// three purposes in the reproduction: (1) the baseline for the tromboning
// experiment (Fig. 7) in both GMSC and serving-MSC roles, (2) the target
// MSC for inter-system handoff (Fig. 9), and (3) a sanity baseline proving
// the shared GSM machinery (MscBase) is genuinely standard.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>

#include "gsm/msc_base.hpp"
#include "pstn/messages.hpp"

namespace vgprs {

class GsmMsc final : public MscBase {
 public:
  struct MscConfig {
    Config base;
    std::string pstn_name;  // switch for outgoing trunks
    std::string hlr_name;   // for the GMSC SRI query
    bool gmsc_role = false;
    /// Called numbers with value/100000 == msrn_prefix are roaming numbers
    /// terminated at this MSC (allocated by the co-located VLR).
    std::uint64_t msrn_prefix = 0;
  };

  GsmMsc(std::string name, MscConfig config)
      : MscBase(std::move(name), config.base), config_(std::move(config)) {}

  [[nodiscard]] std::size_t transit_legs() const {
    return transit_legs_.size();
  }

 protected:
  void route_mo_call(MsContext& ctx) override;
  void on_ms_disconnect(MsContext& ctx, ClearCause cause) override;
  void on_mt_alerting(MsContext& ctx) override;
  void on_mt_connected(MsContext& ctx) override;
  void on_call_cleared(MsContext& ctx) override;
  void on_call_aborted(MsContext& ctx) override;
  void on_uplink_voice(MsContext& ctx, const VoiceFrameInfo& frame) override;
  bool on_unhandled(const Envelope& env) override;

 private:
  struct TransitLeg {
    NodeId upstream;
    Cic up_cic = 0;
    NodeId downstream;
    Cic down_cic = 0;
  };
  struct PendingIncoming {
    Cic cic = 0;
    NodeId from;
    Msisdn calling;
  };

  [[nodiscard]] NodeId pstn() const;
  [[nodiscard]] NodeId hlr() const;
  [[nodiscard]] bool is_msrn(const Msisdn& called) const;
  void release_trunk_leg(MsContext& ctx, ClearCause cause);
  void handle_incoming_iam(const Envelope& env, const IsupIam& iam);

  /// Relays an ISUP message along a transit (GMSC) leg pair, translating
  /// the circuit identification code between the two trunks.
  template <typename M>
  bool relay_transit(const Envelope& env, const M& m) {
    auto it = transit_index_.find(m.cic);
    if (it == transit_index_.end()) return false;
    TransitLeg& leg = transit_legs_[it->second];
    auto out = pool_message<M>(static_cast<const M&>(m));
    if (env.from == leg.upstream && m.cic == leg.up_cic) {
      out->cic = leg.down_cic;
      send(leg.downstream, std::move(out));
    } else {
      out->cic = leg.up_cic;
      send(leg.upstream, std::move(out));
    }
    return true;
  }

  MscConfig config_;
  std::unordered_map<Cic, CallRef> call_by_cic_;
  std::unordered_map<CallRef, Cic> cic_by_call_;
  std::unordered_map<Cic, NodeId> trunk_peer_;
  std::vector<TransitLeg> transit_legs_;               // GMSC role
  std::unordered_map<Cic, std::size_t> transit_index_;
  std::unordered_map<Msrn, PendingIncoming> pending_msrn_;
  std::unordered_map<Msisdn, PendingIncoming> pending_sri_;
};

}  // namespace vgprs
