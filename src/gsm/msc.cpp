#include "gsm/msc.hpp"

#include <stdexcept>

#include "common/log.hpp"

namespace vgprs {

NodeId GsmMsc::pstn() const {
  Node* n = net().node_by_name(config_.pstn_name);
  if (n == nullptr) throw std::logic_error(name() + ": no PSTN switch");
  return n->id();
}

NodeId GsmMsc::hlr() const {
  Node* n = net().node_by_name(config_.hlr_name);
  if (n == nullptr) throw std::logic_error(name() + ": no HLR");
  return n->id();
}

bool GsmMsc::is_msrn(const Msisdn& called) const {
  return config_.msrn_prefix != 0 &&
         called.value() / 100000 == config_.msrn_prefix;
}

// --- MO leg: GSM -> ISUP ------------------------------------------------------

void GsmMsc::route_mo_call(MsContext& ctx) {
  Cic cic = allocate_cic();
  call_by_cic_[cic] = ctx.call_ref;
  cic_by_call_[ctx.call_ref] = cic;
  trunk_peer_[cic] = pstn();
  auto iam = pool_message<IsupIam>();
  iam->cic = cic;
  iam->calling = ctx.calling;
  iam->called = ctx.called;
  send(pstn(), std::move(iam));
}

void GsmMsc::release_trunk_leg(MsContext& ctx, ClearCause cause) {
  auto it = cic_by_call_.find(ctx.call_ref);
  if (it == cic_by_call_.end()) return;
  auto rel = pool_message<IsupRel>();
  rel->cic = it->second;
  rel->cause = static_cast<std::uint8_t>(cause);
  send(trunk_peer_[it->second], std::move(rel));
}

void GsmMsc::on_ms_disconnect(MsContext& ctx, ClearCause cause) {
  release_trunk_leg(ctx, cause);
  complete_ms_release(ctx);
}

void GsmMsc::on_call_aborted(MsContext& ctx) {
  release_trunk_leg(ctx, ClearCause::kNetworkFailure);
}

void GsmMsc::on_mt_alerting(MsContext& ctx) {
  auto it = cic_by_call_.find(ctx.call_ref);
  if (it == cic_by_call_.end()) return;
  auto acm = pool_message<IsupAcm>();
  acm->cic = it->second;
  send(trunk_peer_[it->second], std::move(acm));
}

void GsmMsc::on_mt_connected(MsContext& ctx) {
  auto it = cic_by_call_.find(ctx.call_ref);
  if (it == cic_by_call_.end()) return;
  auto anm = pool_message<IsupAnm>();
  anm->cic = it->second;
  send(trunk_peer_[it->second], std::move(anm));
}

void GsmMsc::on_call_cleared(MsContext& ctx) {
  auto it = cic_by_call_.find(ctx.call_ref);
  if (it == cic_by_call_.end()) return;
  call_by_cic_.erase(it->second);
  trunk_peer_.erase(it->second);
  cic_by_call_.erase(it);
}

void GsmMsc::on_uplink_voice(MsContext& ctx, const VoiceFrameInfo& frame) {
  auto it = cic_by_call_.find(ctx.call_ref);
  if (it == cic_by_call_.end()) return;
  auto voice = pool_message<TrunkVoice>();
  voice->cic = it->second;
  voice->seq = frame.seq;
  voice->origin_us = frame.origin_us;
  send(trunk_peer_[it->second], std::move(voice));
}

// --- incoming ISUP ---------------------------------------------------------------

void GsmMsc::handle_incoming_iam(const Envelope& env, const IsupIam& iam) {
  if (is_msrn(iam.called)) {
    // Terminating leg of GSM call delivery: resolve MSRN -> IMSI at the
    // co-located VLR, then page and set up the call.
    Msrn msrn(iam.called.value());
    pending_msrn_[msrn] = PendingIncoming{iam.cic, env.from, iam.calling};
    auto query = pool_message<MapSendInfoForIncomingCall>();
    query->msrn = msrn;
    send(vlr(), std::move(query));
    return;
  }
  if (config_.gmsc_role) {
    // Gateway role: interrogate the HLR for the roaming number, then
    // forward the call leg (this is what trombones, Fig. 7).
    pending_sri_[iam.called] =
        PendingIncoming{iam.cic, env.from, iam.calling};
    auto sri = pool_message<MapSendRoutingInformation>();
    sri->msisdn = iam.called;
    sri->gmsc_name = name();
    send(hlr(), std::move(sri));
    return;
  }
  auto rel = pool_message<IsupRel>();
  rel->cic = iam.cic;
  rel->cause = 1;  // unallocated number
  send(env.from, std::move(rel));
}

bool GsmMsc::on_unhandled(const Envelope& env) {
  const Message& msg = *env.msg;

  if (const auto* iam = dynamic_cast<const IsupIam*>(&msg)) {
    handle_incoming_iam(env, *iam);
    return true;
  }

  if (const auto* ack =
          dynamic_cast<const MapSendInfoForIncomingCallAck*>(&msg)) {
    auto it = pending_msrn_.find(ack->msrn);
    if (it == pending_msrn_.end()) return true;
    PendingIncoming pending = it->second;
    pending_msrn_.erase(it);
    if (!ack->found) {
      auto rel = pool_message<IsupRel>();
      rel->cic = pending.cic;
      rel->cause = 1;
      send(pending.from, std::move(rel));
      return true;
    }
    CallRef call_ref(0x40000000u | pending.cic);
    call_by_cic_[pending.cic] = call_ref;
    cic_by_call_[call_ref] = pending.cic;
    trunk_peer_[pending.cic] = pending.from;
    if (!start_mt_call(ack->imsi, pending.calling, call_ref)) {
      auto rel = pool_message<IsupRel>();
      rel->cic = pending.cic;
      rel->cause = 17;  // busy
      send(pending.from, std::move(rel));
    }
    return true;
  }

  if (const auto* ack =
          dynamic_cast<const MapSendRoutingInformationAck*>(&msg)) {
    auto it = pending_sri_.find(ack->msisdn);
    if (it == pending_sri_.end()) return true;
    PendingIncoming pending = it->second;
    pending_sri_.erase(it);
    if (!ack->found) {
      auto rel = pool_message<IsupRel>();
      rel->cic = pending.cic;
      rel->cause = 1;
      send(pending.from, std::move(rel));
      return true;
    }
    // Forward the call toward the serving MSC by dialling the MSRN into
    // the PSTN; we stay in the path as a transit exchange with a fresh
    // circuit on the outgoing trunk.
    Cic out_cic = allocate_cic();
    transit_legs_.push_back(
        TransitLeg{pending.from, pending.cic, pstn(), out_cic});
    transit_index_[pending.cic] = transit_legs_.size() - 1;
    transit_index_[out_cic] = transit_legs_.size() - 1;
    auto iam = pool_message<IsupIam>();
    iam->cic = out_cic;
    iam->calling = pending.calling;
    iam->called = Msisdn(ack->msrn.value(), 12);
    send(pstn(), std::move(iam));
    return true;
  }

  if (const auto* acm = dynamic_cast<const IsupAcm*>(&msg)) {
    if (relay_transit(env, *acm)) return true;
    auto it = call_by_cic_.find(acm->cic);
    if (it == call_by_cic_.end()) return true;
    MsContext* ctx = context_by_call(it->second);
    if (ctx != nullptr && ctx->proc == Proc::kMoCall) {
      notify_mo_alerting(*ctx);
    }
    return true;
  }
  if (const auto* anm = dynamic_cast<const IsupAnm*>(&msg)) {
    if (relay_transit(env, *anm)) return true;
    auto it = call_by_cic_.find(anm->cic);
    if (it == call_by_cic_.end()) return true;
    MsContext* ctx = context_by_call(it->second);
    if (ctx != nullptr && ctx->proc == Proc::kMoCall) {
      notify_mo_connect(*ctx);
    }
    return true;
  }
  if (const auto* rel = dynamic_cast<const IsupRel*>(&msg)) {
    if (relay_transit(env, *rel)) return true;
    auto rlc = pool_message<IsupRlc>();
    rlc->cic = rel->cic;
    send(env.from, std::move(rlc));
    auto it = call_by_cic_.find(rel->cic);
    if (it == call_by_cic_.end()) return true;
    if (MsContext* ctx = context_by_call(it->second)) {
      release_from_network(*ctx, static_cast<ClearCause>(rel->cause));
    }
    return true;
  }
  if (const auto* rlc = dynamic_cast<const IsupRlc*>(&msg)) {
    if (relay_transit(env, *rlc)) {
      auto it = transit_index_.find(rlc->cic);
      if (it != transit_index_.end()) {
        const TransitLeg& leg = transit_legs_[it->second];
        transit_index_.erase(leg.up_cic == rlc->cic ? leg.down_cic
                                                    : leg.up_cic);
        transit_index_.erase(rlc->cic);
      }
      return true;
    }
    return true;  // confirmation of our REL
  }
  if (const auto* voice = dynamic_cast<const TrunkVoice*>(&msg)) {
    if (relay_transit(env, *voice)) return true;
    auto it = call_by_cic_.find(voice->cic);
    if (it == call_by_cic_.end()) return true;
    if (MsContext* ctx = context_by_call(it->second)) {
      send_downlink_voice(*ctx, voice->seq, voice->origin_us);
    }
    return true;
  }

  return false;
}

}  // namespace vgprs
