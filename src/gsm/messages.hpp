// The GSM message catalog: Um (air), Abis (BTS-BSC), A (BSC-MSC) and MAP
// (MSC/VLR/HLR/SGSN signaling).  Message names follow the paper's notation
// (Um_/Abis_/A_/MAP_ prefixes) so recorded traces read like its figures.
//
// Wire-type ranges: Um 0x01xx, Abis 0x02xx, A 0x03xx, MAP 0x04xx.
#pragma once

#include "gsm/payloads.hpp"
#include "sim/proto.hpp"

namespace vgprs {

// --- Um: air interface (MS <-> BTS) ----------------------------------------

using UmChannelRequest =
    ProtoMessage<ChannelRequestInfo, 0x0101, "Um_Channel_Request">;
using UmImmediateAssignment =
    ProtoMessage<ChannelAssignmentInfo, 0x0102, "Um_Immediate_Assignment">;
using UmLocationUpdateRequest =
    ProtoMessage<LocationUpdateInfo, 0x0103, "Um_Location_Update_Request">;
using UmLocationUpdateAccept =
    ProtoMessage<LocationUpdateAcceptInfo, 0x0104, "Um_Location_Update_Accept">;
using UmAuthRequest =
    ProtoMessage<AuthChallengeInfo, 0x0105, "Um_Auth_Request">;
using UmAuthResponse =
    ProtoMessage<AuthResponseInfo, 0x0106, "Um_Auth_Response">;
using UmCipherModeCommand =
    ProtoMessage<CipherModeInfo, 0x0107, "Um_Cipher_Mode_Command">;
using UmCipherModeComplete =
    ProtoMessage<SubscriberRefInfo, 0x0108, "Um_Cipher_Mode_Complete">;
using UmCmServiceRequest =
    ProtoMessage<CmServiceInfo, 0x0109, "Um_CM_Service_Request">;
using UmCmServiceAccept =
    ProtoMessage<SubscriberRefInfo, 0x010A, "Um_CM_Service_Accept">;
using UmSetup = ProtoMessage<CallSetupInfo, 0x010B, "Um_Setup">;
using UmCallProceeding =
    ProtoMessage<CallRefInfo, 0x010C, "Um_Call_Proceeding">;
using UmAlerting = ProtoMessage<CallRefInfo, 0x010D, "Um_Alerting">;
using UmConnect = ProtoMessage<CallRefInfo, 0x010E, "Um_Connect">;
using UmConnectAck = ProtoMessage<CallRefInfo, 0x010F, "Um_Connect_Ack">;
using UmDisconnect = ProtoMessage<CallDisconnectInfo, 0x0110, "Um_Disconnect">;
using UmRelease = ProtoMessage<CallRefInfo, 0x0111, "Um_Release">;
using UmReleaseComplete =
    ProtoMessage<CallRefInfo, 0x0112, "Um_Release_Complete">;
using UmPagingRequest = ProtoMessage<PagingInfo, 0x0113, "Um_Paging_Request">;
using UmPagingResponse =
    ProtoMessage<PagingResponseInfo, 0x0114, "Um_Paging_Response">;
using UmAssignmentCommand =
    ProtoMessage<AssignmentInfo, 0x0115, "Um_Assignment_Command">;
using UmAssignmentComplete =
    ProtoMessage<AssignmentInfo, 0x0116, "Um_Assignment_Complete">;
using UmHandoverCommand =
    ProtoMessage<HandoverChannelInfo, 0x0117, "Um_Handover_Command">;
using UmHandoverAccess =
    ProtoMessage<HandoverRefInfo, 0x0118, "Um_Handover_Access">;
using UmHandoverComplete =
    ProtoMessage<HandoverRefInfo, 0x0119, "Um_Handover_Complete">;
using UmVoiceFrame = ProtoMessage<VoiceFrameInfo, 0x0120, "Um_TCH_Frame">;
using UmLocationUpdateReject =
    ProtoMessage<RejectInfo, 0x0121, "Um_Location_Update_Reject">;
using UmCmServiceReject =
    ProtoMessage<RejectInfo, 0x0122, "Um_CM_Service_Reject">;
using UmImsiDetach =
    ProtoMessage<SubscriberRefInfo, 0x0123, "Um_IMSI_Detach">;

// --- Abis: BTS <-> BSC ------------------------------------------------------

using AbisChannelRequest =
    ProtoMessage<ChannelRequestInfo, 0x0201, "Abis_Channel_Request">;
using AbisImmediateAssignment =
    ProtoMessage<ChannelAssignmentInfo, 0x0202, "Abis_Immediate_Assignment">;
using AbisLocationUpdate =
    ProtoMessage<LocationUpdateInfo, 0x0203, "Abis_Location_Update">;
using AbisLocationUpdateAccept =
    ProtoMessage<LocationUpdateAcceptInfo, 0x0204,
                 "Abis_Location_Update_Accept">;
using AbisAuthRequest =
    ProtoMessage<AuthChallengeInfo, 0x0205, "Abis_Auth_Request">;
using AbisAuthResponse =
    ProtoMessage<AuthResponseInfo, 0x0206, "Abis_Auth_Response">;
using AbisCipherModeCommand =
    ProtoMessage<CipherModeInfo, 0x0207, "Abis_Cipher_Mode_Command">;
using AbisCipherModeComplete =
    ProtoMessage<SubscriberRefInfo, 0x0208, "Abis_Cipher_Mode_Complete">;
using AbisCmServiceRequest =
    ProtoMessage<CmServiceInfo, 0x0209, "Abis_CM_Service_Request">;
using AbisCmServiceAccept =
    ProtoMessage<SubscriberRefInfo, 0x020A, "Abis_CM_Service_Accept">;
using AbisSetup = ProtoMessage<CallSetupInfo, 0x020B, "Abis_Setup">;
using AbisCallProceeding =
    ProtoMessage<CallRefInfo, 0x020C, "Abis_Call_Proceeding">;
using AbisAlerting = ProtoMessage<CallRefInfo, 0x020D, "Abis_Alerting">;
using AbisConnect = ProtoMessage<CallRefInfo, 0x020E, "Abis_Connect">;
using AbisConnectAck = ProtoMessage<CallRefInfo, 0x020F, "Abis_Connect_Ack">;
using AbisDisconnect =
    ProtoMessage<CallDisconnectInfo, 0x0210, "Abis_Disconnect">;
using AbisRelease = ProtoMessage<CallRefInfo, 0x0211, "Abis_Release">;
using AbisReleaseComplete =
    ProtoMessage<CallRefInfo, 0x0212, "Abis_Release_Complete">;
using AbisPaging = ProtoMessage<PagingInfo, 0x0213, "Abis_Paging">;
using AbisPagingResponse =
    ProtoMessage<PagingResponseInfo, 0x0214, "Abis_Paging_Response">;
using AbisAssignmentCommand =
    ProtoMessage<AssignmentInfo, 0x0215, "Abis_Assignment_Command">;
using AbisAssignmentComplete =
    ProtoMessage<AssignmentInfo, 0x0216, "Abis_Assignment_Complete">;
using AbisHandoverCommand =
    ProtoMessage<HandoverChannelInfo, 0x0217, "Abis_Handover_Command">;
using AbisHandoverAccess =
    ProtoMessage<HandoverRefInfo, 0x0218, "Abis_Handover_Access">;
using AbisHandoverComplete =
    ProtoMessage<HandoverRefInfo, 0x0219, "Abis_Handover_Complete">;
using AbisVoiceFrame = ProtoMessage<VoiceFrameInfo, 0x0220, "Abis_TRAU_Frame">;
using AbisLocationUpdateReject =
    ProtoMessage<RejectInfo, 0x0221, "Abis_Location_Update_Reject">;
using AbisCmServiceReject =
    ProtoMessage<RejectInfo, 0x0222, "Abis_CM_Service_Reject">;
using AbisImsiDetach =
    ProtoMessage<SubscriberRefInfo, 0x0223, "Abis_IMSI_Detach">;

// --- A: BSC <-> (V)MSC ------------------------------------------------------

using ALocationUpdate =
    ProtoMessage<LocationUpdateInfo, 0x0301, "A_Location_Update">;
using ALocationUpdateAccept =
    ProtoMessage<LocationUpdateAcceptInfo, 0x0302, "A_Location_Update_Accept">;
using AAuthRequest = ProtoMessage<AuthChallengeInfo, 0x0303, "A_Auth_Request">;
using AAuthResponse =
    ProtoMessage<AuthResponseInfo, 0x0304, "A_Auth_Response">;
using ACipherModeCommand =
    ProtoMessage<CipherModeInfo, 0x0305, "A_Cipher_Mode_Command">;
using ACipherModeComplete =
    ProtoMessage<SubscriberRefInfo, 0x0306, "A_Cipher_Mode_Complete">;
using ACmServiceRequest =
    ProtoMessage<CmServiceInfo, 0x0307, "A_CM_Service_Request">;
using ACmServiceAccept =
    ProtoMessage<SubscriberRefInfo, 0x0308, "A_CM_Service_Accept">;
using ASetup = ProtoMessage<CallSetupInfo, 0x0309, "A_Setup">;
using ACallProceeding = ProtoMessage<CallRefInfo, 0x030A, "A_Call_Proceeding">;
using AAlerting = ProtoMessage<CallRefInfo, 0x030B, "A_Alerting">;
using AConnect = ProtoMessage<CallRefInfo, 0x030C, "A_Connect">;
using AConnectAck = ProtoMessage<CallRefInfo, 0x030D, "A_Connect_Ack">;
using ADisconnect = ProtoMessage<CallDisconnectInfo, 0x030E, "A_Disconnect">;
using ARelease = ProtoMessage<CallRefInfo, 0x030F, "A_Release">;
using AReleaseComplete =
    ProtoMessage<CallRefInfo, 0x0310, "A_Release_Complete">;
using APaging = ProtoMessage<PagingInfo, 0x0311, "A_Paging">;
using APagingResponse =
    ProtoMessage<PagingResponseInfo, 0x0312, "A_Paging_Response">;
using AAssignmentRequest =
    ProtoMessage<AssignmentInfo, 0x0313, "A_Assignment_Request">;
using AAssignmentComplete =
    ProtoMessage<AssignmentInfo, 0x0314, "A_Assignment_Complete">;
using AHandoverRequired =
    ProtoMessage<HandoverRequiredInfo, 0x0315, "A_Handover_Required">;
using AHandoverRequest =
    ProtoMessage<HandoverRequiredInfo, 0x0316, "A_Handover_Request">;
using AHandoverRequestAck =
    ProtoMessage<HandoverChannelInfo, 0x0317, "A_Handover_Request_Ack">;
using AHandoverCommand =
    ProtoMessage<HandoverChannelInfo, 0x0318, "A_Handover_Command">;
using AHandoverDetect =
    ProtoMessage<HandoverRefInfo, 0x0319, "A_Handover_Detect">;
using AHandoverComplete =
    ProtoMessage<HandoverRefInfo, 0x031A, "A_Handover_Complete">;
using AClearCommand = ProtoMessage<CallRefInfo, 0x031B, "A_Clear_Command">;
using AClearComplete = ProtoMessage<CallRefInfo, 0x031C, "A_Clear_Complete">;
using AVoiceFrame = ProtoMessage<VoiceFrameInfo, 0x0320, "A_TRAU_Frame">;
using ALocationUpdateReject =
    ProtoMessage<RejectInfo, 0x0321, "A_Location_Update_Reject">;
using ACmServiceReject =
    ProtoMessage<RejectInfo, 0x0322, "A_CM_Service_Reject">;
/// Inter-MSC voice after inter-system handoff (anchor <-> target trunk).
using ETrunkVoice = ProtoMessage<VoiceFrameInfo, 0x0323, "E_Trunk_Voice">;
using AImsiDetach =
    ProtoMessage<SubscriberRefInfo, 0x0324, "A_IMSI_Detach">;

// --- MAP: SS7 signaling among (V)MSC, VLR, HLR, SGSN, GMSC ------------------

using MapSendAuthInfo =
    ProtoMessage<SubscriberRefInfo, 0x0401, "MAP_Send_Auth_Info">;
using MapSendAuthInfoAck =
    ProtoMessage<MapAuthInfoAckInfo, 0x0402, "MAP_Send_Auth_Info_ack">;
using MapUpdateLocationArea =
    ProtoMessage<MapUpdateLocationAreaInfo, 0x0403, "MAP_Update_Location_Area">;
using MapUpdateLocationAreaAck =
    ProtoMessage<MapResultInfo, 0x0404, "MAP_Update_Location_Area_ack">;
using MapUpdateLocation =
    ProtoMessage<MapUpdateLocationInfo, 0x0405, "MAP_Update_Location">;
using MapUpdateLocationAck =
    ProtoMessage<MapResultInfo, 0x0406, "MAP_Update_Location_ack">;
using MapInsertSubsData =
    ProtoMessage<MapInsertSubsDataInfo, 0x0407, "MAP_Insert_Subs_Data">;
using MapInsertSubsDataAck =
    ProtoMessage<SubscriberRefInfo, 0x0408, "MAP_Insert_Subs_Data_ack">;
using MapCancelLocation =
    ProtoMessage<SubscriberRefInfo, 0x0409, "MAP_Cancel_Location">;
using MapCancelLocationAck =
    ProtoMessage<SubscriberRefInfo, 0x040A, "MAP_Cancel_Location_ack">;
using MapSendInfoForOutgoingCall =
    ProtoMessage<MapOutgoingCallInfo, 0x040B,
                 "MAP_Send_Info_For_Outgoing_Call">;
using MapSendInfoForOutgoingCallAck =
    ProtoMessage<MapResultInfo, 0x040C,
                 "MAP_Send_Info_For_Outgoing_Call_ack">;
using MapSendRoutingInformation =
    ProtoMessage<MapSriInfo, 0x040D, "MAP_Send_Routing_Information">;
using MapSendRoutingInformationAck =
    ProtoMessage<MapSriAckInfo, 0x040E, "MAP_Send_Routing_Information_ack">;
using MapProvideRoamingNumber =
    ProtoMessage<MapPrnInfo, 0x040F, "MAP_Provide_Roaming_Number">;
using MapProvideRoamingNumberAck =
    ProtoMessage<MapPrnAckInfo, 0x0410, "MAP_Provide_Roaming_Number_ack">;
using MapPrepareHandover =
    ProtoMessage<MapPrepareHandoverInfo, 0x0411, "MAP_Prepare_Handover">;
using MapPrepareHandoverAck =
    ProtoMessage<MapPrepareHandoverAckInfo, 0x0412, "MAP_Prepare_Handover_ack">;
using MapSendEndSignal =
    ProtoMessage<HandoverRefInfo, 0x0413, "MAP_Send_End_Signal">;
using MapUpdateGprsLocation =
    ProtoMessage<MapGprsLocationInfo, 0x0414, "MAP_Update_Gprs_Location">;
using MapUpdateGprsLocationAck =
    ProtoMessage<MapResultInfo, 0x0415, "MAP_Update_Gprs_Location_ack">;
using MapSendInfoForIncomingCall =
    ProtoMessage<MapIncomingCallInfo, 0x0416,
                 "MAP_Send_Info_For_Incoming_Call">;
using MapSendInfoForIncomingCallAck =
    ProtoMessage<MapIncomingCallAckInfo, 0x0417,
                 "MAP_Send_Info_For_Incoming_Call_ack">;
using MapSendRoutingInfoForGprs =
    ProtoMessage<SubscriberRefInfo, 0x0418, "MAP_Send_Routing_Info_For_GPRS">;
using MapSendRoutingInfoForGprsAck =
    ProtoMessage<MapGprsRoutingAckInfo, 0x0419,
                 "MAP_Send_Routing_Info_For_GPRS_ack">;

/// Registers the whole GSM catalog with the MessageRegistry (idempotent).
void register_gsm_messages();

}  // namespace vgprs
