#include "gsm/bsc.hpp"

#include <stdexcept>

#include "common/log.hpp"
#include "gsm/bts.hpp"

namespace vgprs {

void Bsc::adopt_bts(const Bts& bts) { adopt_bts(bts.id(), bts.cell()); }

void Bsc::adopt_bts(NodeId bts, CellId cell) { bts_by_cell_[cell] = bts; }

void Bsc::initiate_handover(Imsi imsi, CallRef call_ref, CellId target_cell) {
  auto req = pool_message<AHandoverRequired>();
  req->imsi = imsi;
  req->call_ref = call_ref;
  req->target_cell = target_cell;
  send(msc(), std::move(req));
}

NodeId Bsc::msc() const {
  Node* n = net().node_by_name(config_.msc_name);
  if (n == nullptr) {
    throw std::logic_error(name() + ": no MSC " + config_.msc_name);
  }
  return n->id();
}

NodeId Bsc::bts_for(const Imsi& imsi) const {
  auto it = bts_by_imsi_.find(imsi);
  return it == bts_by_imsi_.end() ? NodeId{} : it->second;
}

void Bsc::on_message(const Envelope& env) {
  // --- radio resource management, handled locally --------------------------
  if (const auto* cr = dynamic_cast<const AbisChannelRequest*>(env.msg.get())) {
    note_ms(cr->imsi, env.from);
    if (sdcch_in_use_ >= config_.sdcch_channels) {
      VG_WARN("bsc", name() << ": SDCCH congestion, request from "
                            << cr->imsi.to_string() << " dropped");
      return;  // the MS's request timer will expire
    }
    ++sdcch_in_use_;
    auto out = pool_message<AbisImmediateAssignment>();
    out->imsi = cr->imsi;
    out->channel = next_channel_++;
    send(env.from, std::move(out));
    return;
  }
  if (const auto* ar =
          dynamic_cast<const AAssignmentRequest*>(env.msg.get())) {
    if (tch_in_use_ >= config_.tch_channels) {
      VG_WARN("bsc", name() << ": TCH congestion for " << ar->imsi.to_string());
      return;
    }
    ++tch_in_use_;
    NodeId bts = bts_for(ar->imsi);
    if (!bts.valid()) return;
    auto out = pool_message<AbisAssignmentCommand>();
    out->imsi = ar->imsi;
    out->call_ref = ar->call_ref;
    out->channel = next_channel_++;
    send(bts, std::move(out));
    return;
  }
  if (const auto* clear = dynamic_cast<const AClearCommand*>(env.msg.get())) {
    if (sdcch_in_use_ > 0) --sdcch_in_use_;
    if (tch_in_use_ > 0) --tch_in_use_;
    auto out = pool_message<AClearComplete>();
    out->imsi = clear->imsi;
    out->call_ref = clear->call_ref;
    send(msc(), std::move(out));
    return;
  }
  if (const auto* pg = dynamic_cast<const APaging*>(env.msg.get())) {
    // Page every cell of the location area (all BTSs of this BSC).
    for (const auto& [cell, bts] : bts_by_cell_) {
      (void)cell;
      auto out = pool_message<AbisPaging>();
      static_cast<PagingInfo&>(*out) = static_cast<const PagingInfo&>(*pg);
      send(bts, std::move(out));
    }
    return;
  }
  if (const auto* hreq =
          dynamic_cast<const AHandoverRequest*>(env.msg.get())) {
    // Target-BSC side of inter-system handoff: reserve a channel in the
    // requested cell and acknowledge to the requesting MSC.
    auto ack = pool_message<AHandoverRequestAck>();
    ack->imsi = hreq->imsi;
    ack->call_ref = hreq->call_ref;
    ack->target_cell = hreq->target_cell;
    if (tch_in_use_ >= config_.tch_channels ||
        !bts_by_cell_.contains(hreq->target_cell)) {
      ack->channel = 0;  // failure indication
    } else {
      ++tch_in_use_;
      ack->channel = next_channel_++;
    }
    send(env.from, std::move(ack));
    return;
  }
  if (const auto* hacc =
          dynamic_cast<const AbisHandoverAccess*>(env.msg.get())) {
    // The MS arrived on our radio resources: adopt it and tell the MSC.
    note_ms(hacc->imsi, env.from);
    auto out = pool_message<AHandoverDetect>();
    out->imsi = hacc->imsi;
    out->call_ref = hacc->call_ref;
    send(msc(), std::move(out));
    return;
  }

  // --- uplink: Abis -> A ----------------------------------------------------
  if (relay_up<AbisLocationUpdate, ALocationUpdate>(env)) return;
  if (relay_up<AbisAuthResponse, AAuthResponse>(env)) return;
  if (relay_up<AbisCipherModeComplete, ACipherModeComplete>(env)) return;
  if (relay_up<AbisCmServiceRequest, ACmServiceRequest>(env)) return;
  if (relay_up<AbisSetup, ASetup>(env)) return;
  if (relay_up<AbisCallProceeding, ACallProceeding>(env)) return;
  if (relay_up<AbisAlerting, AAlerting>(env)) return;
  if (relay_up<AbisConnect, AConnect>(env)) return;
  if (relay_up<AbisConnectAck, AConnectAck>(env)) return;
  if (relay_up<AbisDisconnect, ADisconnect>(env)) return;
  if (relay_up<AbisRelease, ARelease>(env)) return;
  if (relay_up<AbisReleaseComplete, AReleaseComplete>(env)) return;
  if (relay_up<AbisPagingResponse, APagingResponse>(env)) return;
  if (relay_up<AbisAssignmentComplete, AAssignmentComplete>(env)) return;
  if (relay_up<AbisHandoverComplete, AHandoverComplete>(env)) return;
  if (relay_up<AbisVoiceFrame, AVoiceFrame>(env)) return;
  if (relay_up<AbisImsiDetach, AImsiDetach>(env)) return;

  // --- downlink: A -> Abis ----------------------------------------------------
  if (relay_down<ALocationUpdateAccept, AbisLocationUpdateAccept>(env)) return;
  if (relay_down<AAuthRequest, AbisAuthRequest>(env)) return;
  if (relay_down<ACipherModeCommand, AbisCipherModeCommand>(env)) return;
  if (relay_down<ACmServiceAccept, AbisCmServiceAccept>(env)) return;
  if (relay_down<ASetup, AbisSetup>(env)) return;
  if (relay_down<ACallProceeding, AbisCallProceeding>(env)) return;
  if (relay_down<AAlerting, AbisAlerting>(env)) return;
  if (relay_down<AConnect, AbisConnect>(env)) return;
  if (relay_down<AConnectAck, AbisConnectAck>(env)) return;
  if (relay_down<ADisconnect, AbisDisconnect>(env)) return;
  if (relay_down<ARelease, AbisRelease>(env)) return;
  if (relay_down<AReleaseComplete, AbisReleaseComplete>(env)) return;
  if (relay_down<AHandoverCommand, AbisHandoverCommand>(env)) return;
  if (relay_down<AVoiceFrame, AbisVoiceFrame>(env)) return;
  if (relay_down<ALocationUpdateReject, AbisLocationUpdateReject>(env))
    return;
  if (relay_down<ACmServiceReject, AbisCmServiceReject>(env)) return;

  VG_WARN("bsc", name() << ": unhandled " << env.msg->name());
}

}  // namespace vgprs
