// Core GSM data types shared by the MAP layer, the location registers and
// the (V)MSC: authentication triplets, subscriber profiles and QoS.
#pragma once

#include <cstdint>
#include <string>

#include "common/bytes.hpp"
#include "common/ids.hpp"

namespace vgprs {

/// GSM authentication triplet produced by the AuC function of the HLR from
/// the subscriber key Ki and a random challenge (A3/A8 algorithms).
struct AuthTriplet {
  std::uint64_t rand = 0;  // RAND challenge
  std::uint32_t sres = 0;  // expected signed response (A3)
  std::uint64_t kc = 0;    // ciphering key (A8)

  void encode(ByteWriter& w) const {
    w.u64(rand);
    w.u32(sres);
    w.u64(kc);
  }
  static AuthTriplet decode(ByteReader& r) {
    AuthTriplet t;
    t.rand = r.u64();
    t.sres = r.u32();
    t.kc = r.u64();
    return t;
  }

  friend bool operator==(const AuthTriplet&, const AuthTriplet&) = default;
};

/// Subscription data the HLR pushes to the VLR via MAP_Insert_Subs_Data.
struct SubscriberProfile {
  Msisdn msisdn;
  bool international_calls_allowed = true;
  bool gprs_allowed = true;
  bool voip_allowed = true;        // vGPRS service subscription
  IpAddress static_pdp_address;    // only set for static-PDP subscribers

  void encode(ByteWriter& w) const {
    w.msisdn(msisdn);
    w.boolean(international_calls_allowed);
    w.boolean(gprs_allowed);
    w.boolean(voip_allowed);
    w.ip(static_pdp_address);
  }
  static SubscriberProfile decode(ByteReader& r) {
    SubscriberProfile p;
    p.msisdn = r.msisdn();
    p.international_calls_allowed = r.boolean();
    p.gprs_allowed = r.boolean();
    p.voip_allowed = r.boolean();
    p.static_pdp_address = r.ip();
    return p;
  }

  friend bool operator==(const SubscriberProfile&,
                         const SubscriberProfile&) = default;
};

/// GPRS QoS profile (simplified from GSM 03.60): the paper distinguishes a
/// low-priority signaling context from a real-time voice context.
enum class QosClass : std::uint8_t {
  kBackground = 0,   // low priority — vGPRS H.323 signaling context
  kInteractive = 1,
  kStreaming = 2,
  kConversational = 3,  // real-time — vGPRS voice context
};

[[nodiscard]] constexpr const char* to_string(QosClass q) {
  switch (q) {
    case QosClass::kBackground: return "background";
    case QosClass::kInteractive: return "interactive";
    case QosClass::kStreaming: return "streaming";
    case QosClass::kConversational: return "conversational";
  }
  return "?";
}

struct QosProfile {
  QosClass traffic_class = QosClass::kBackground;
  std::uint16_t mean_throughput_kbps = 8;
  std::uint8_t priority = 3;  // 1 = highest

  void encode(ByteWriter& w) const {
    w.u8(static_cast<std::uint8_t>(traffic_class));
    w.u16(mean_throughput_kbps);
    w.u8(priority);
  }
  static QosProfile decode(ByteReader& r) {
    QosProfile q;
    q.traffic_class = static_cast<QosClass>(r.u8());
    q.mean_throughput_kbps = r.u16();
    q.priority = r.u8();
    return q;
  }

  friend bool operator==(const QosProfile&, const QosProfile&) = default;
};

/// Call clearing causes (subset of Q.850).
enum class ClearCause : std::uint8_t {
  kNormal = 16,
  kUserBusy = 17,
  kNoAnswer = 19,
  kCallRejected = 21,
  kNoChannel = 34,
  kNetworkFailure = 38,
  kUnallocatedNumber = 1,
};

}  // namespace vgprs
