// MscBase: the GSM-side machinery shared by the classic circuit-switched
// MSC and the paper's VMSC.  It owns the per-MS contexts and drives the
// standard procedures — registration (authentication, ciphering, location
// updating), MO/MT call control on the A interface, call clearing, and
// inter-system handoff (anchor and target roles, MAP/E interface).
//
// What a subclass supplies is exactly what differs between an MSC and a
// VMSC: how a call leaves the GSM domain (route_mo_call / on_ms_disconnect)
// and what happens at registration beyond GSM (on_registration_substrate —
// the VMSC's GPRS attach + PDP activation + H.323 endpoint registration).
// Sharing this class between both switches is the executable form of the
// paper's claim that vGPRS changes nothing on the BSS/VLR/HLR side.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <utility>

#include "gsm/messages.hpp"
#include "sim/network.hpp"
#include "sim/retransmit.hpp"
#include "sim/subscriber_pool.hpp"

namespace vgprs {

class MscBase : public Node {
 public:
  struct Config {
    std::string vlr_name;
    bool authenticate_registration = true;
    bool authenticate_calls = true;
    bool ciphering = true;
    /// Supervision for every transient procedure (registration, call
    /// setup, clearing): if it has not reached a stable state by then, the
    /// MSC aborts it and releases all resources it holds.
    SimDuration procedure_guard = SimDuration::seconds(45);
    /// Supervision for an anchor-side inter-MSC handoff: if the target has
    /// not taken over (MAP_Send_End_Signal) by then, the attempt is
    /// abandoned and the call stays on the serving cell.
    SimDuration handoff_guard = SimDuration::seconds(30);
    /// Backoff for MAP / GPRS / RAS request retransmission (see
    /// Retransmitter).  Exhausts well inside procedure_guard so a dead peer
    /// aborts the procedure before the guard has to.
    Retransmitter::Policy retransmit{};
  };

  /// Procedure currently owning the context.
  enum class Proc : std::uint8_t {
    kNone,
    kRegister,
    kMoCall,
    kMtCall,
  };

  /// Step within the owning procedure.
  enum class Step : std::uint8_t {
    kNone,
    kAuthInfo,       // waiting for MAP_Send_Auth_Info_ack
    kAuthChallenge,  // waiting for A_Auth_Response
    kCipher,         // waiting for A_Cipher_Mode_Complete
    kUla,            // waiting for MAP_Update_Location_Area_ack
    kSubstrate,      // subclass registration work in progress
    kAwaitSetup,     // MO: CM service accepted, waiting for A_Setup
    kAuthorize,      // MO: waiting for MAP_Send_Info_For_Outgoing_Call_ack
    kPaging,         // MT: waiting for A_Paging_Response
    kAwaitAlert,     // MT: setup sent, waiting for A_Alerting
    kAwaitAnswer,    // MT: alerting, waiting for A_Connect
    kMoProgress,     // MO: waiting for far-end alerting/answer
    kActive,         // conversation
    kReleasingMs,    // MS hung up; waiting for A_Release_Complete
    kReleasingNet,   // network clearing; waiting for A_Release
    kClearing,       // waiting for A_Clear_Complete
  };

  struct MsContext {
    Imsi imsi;
    Tmsi tmsi;
    Msisdn msisdn;  // learned from the VLR at location updating
    LocationAreaId lai;
    CellId cell;
    NodeId bsc;
    bool registered = false;

    Proc proc = Proc::kNone;
    Step step = Step::kNone;
    AuthTriplet triplet;  // vector in use for the current challenge
    bool has_triplet = false;

    CallRef call_ref;
    Msisdn calling;
    Msisdn called;

    std::uint64_t guard_epoch = 0;  // invalidates procedure guards

    // Inter-system handoff.
    bool handed_off = false;  // anchor: MS now served by remote_msc
    bool handed_in = false;   // target: MS arrived from remote_msc (anchor)
    NodeId remote_msc;
    CellId handover_target;
    std::uint64_t handoff_epoch = 0;  // invalidates handoff guards
  };

  MscBase(std::string name, Config config)
      : Node(std::move(name)), config_(std::move(config)) {
    retx_.set_policy(config_.retransmit);
  }

  /// Declares that `cell` is served by this MSC via `bsc_name` (used when
  /// this MSC is the handoff target).
  void adopt_cell(CellId cell, std::string bsc_name);
  /// Declares that `cell` belongs to the neighbouring MSC `msc_name`
  /// (used when this MSC is the handoff anchor).
  void add_remote_cell(CellId cell, std::string msc_name);

  [[nodiscard]] const MsContext* context_of(Imsi imsi) const;
  [[nodiscard]] std::size_t attached_count() const { return contexts_.size(); }

  void on_message(const Envelope& env) override;
  void on_timer(TimerId id, std::uint64_t cookie) override;
  /// Switch restart: every MS context, call binding, armed guard and
  /// pending retransmission is volatile and lost.  Cell provisioning
  /// (adopt_cell / add_remote_cell) survives.  Subscribers re-establish
  /// state through re-registration (cause-4 CM service rejects push them).
  void on_restart() override;

  /// Fired when a context finishes registration (after the substrate step).
  std::function<void(const MsContext&)> on_ms_registered;

 protected:
  // --- hooks for subclasses -------------------------------------------------
  /// Registration beyond GSM (VMSC: GPRS attach + PDP + RAS).  The default
  /// completes immediately.  Implementations must eventually call
  /// finish_registration(ctx).
  virtual void on_registration_substrate(MsContext& ctx) {
    finish_registration(ctx);
  }
  /// MO call authorized: route it beyond the GSM domain.  Implementations
  /// drive progress via notify_mo_alerting / notify_mo_connect, or reject
  /// via reject_mo_call.
  virtual void route_mo_call(MsContext& ctx) = 0;
  /// The MS hung up: release the far end, then call complete_ms_release.
  virtual void on_ms_disconnect(MsContext& ctx, ClearCause cause) = 0;
  /// MT call progress, for relaying toward the far end.
  virtual void on_mt_alerting(MsContext& ctx) { (void)ctx; }
  virtual void on_mt_connected(MsContext& ctx) { (void)ctx; }
  /// Both call legs are gone and radio resources are clear.
  virtual void on_call_cleared(MsContext& ctx) { (void)ctx; }
  /// A supervised procedure expired (peer unreachable, message lost
  /// without recovery): release the far-end leg this MSC created.  The
  /// radio resources are cleared by the base right after this call.
  virtual void on_call_aborted(MsContext& ctx) { (void)ctx; }
  /// The subscriber left this MSC: IMSI detach from the MS, or
  /// MAP_Cancel_Location relayed by the VLR after the subscriber
  /// registered elsewhere.  The context is erased right after this call;
  /// the VMSC uses it to detach from GPRS and unregister the alias.
  virtual void on_subscriber_removed(const MsContext& ctx) { (void)ctx; }
  /// Uplink voice from the MS (already anchored here after handoff).
  virtual void on_uplink_voice(MsContext& ctx, const VoiceFrameInfo& frame) {
    (void)ctx;
    (void)frame;
  }
  /// A message no MscBase procedure recognises; subclass protocols
  /// (ISUP, GPRS, H.323) handle it.  Return true if consumed.
  virtual bool on_unhandled(const Envelope& env) {
    (void)env;
    return false;
  }

  // --- helpers for subclasses ------------------------------------------------
  MsContext* context(Imsi imsi);
  MsContext* context_by_call(CallRef call_ref);
  [[nodiscard]] NodeId vlr() const;

  /// Completes the registration procedure (sends Location Update Accept).
  void finish_registration(MsContext& ctx);
  void reject_registration(MsContext& ctx, std::uint8_t cause);

  /// MO helpers.
  void notify_mo_alerting(MsContext& ctx);
  void notify_mo_connect(MsContext& ctx);
  void reject_mo_call(MsContext& ctx, ClearCause cause);

  /// Starts an MT call toward a registered MS.  Returns false if the MS is
  /// unknown, not registered, or busy.
  bool start_mt_call(Imsi imsi, Msisdn calling, CallRef call_ref);

  /// MS-initiated release, far end already released by the subclass.
  void complete_ms_release(MsContext& ctx);
  /// Network-initiated release (far end hung up or call failed).
  void release_from_network(MsContext& ctx, ClearCause cause);

  /// Sends one downlink voice frame toward the MS (via the target MSC when
  /// the call was handed off).  `processing` models local work such as the
  /// VMSC's vocoder transcode.
  void send_downlink_voice(MsContext& ctx, std::uint32_t seq,
                           std::int64_t origin_us,
                           SimDuration processing = SimDuration::zero());

  /// Where MS-bound messages go: the serving BSC, or the target MSC after
  /// an inter-system handoff.
  [[nodiscard]] NodeId downlink(const MsContext& ctx) const;

  // --- request retransmission -------------------------------------------------
  /// One key space for every request this switch may have in flight, shared
  /// with subclasses so the Retransmitter keys cannot collide.  Kinds 0x1x
  /// are MscBase's MAP exchanges; 0x2x GPRS and 0x3x RAS / 0x4x Q.931 are
  /// armed by the Vmsc.
  enum class RetxKind : std::uint8_t {
    kMapAuth = 0x11,
    kMapUla = 0x12,
    kMapOutCall = 0x13,
    kGprsAttach = 0x21,
    kPdpActivateSig = 0x22,
    kPdpActivateVoice = 0x23,
    kPdpDeactivateSig = 0x24,
    kPdpDeactivateVoice = 0x25,
    kGprsDetach = 0x26,
    kRasRrq = 0x31,
    kRasArq = 0x32,
    kRasDrq = 0x33,
    kRasUrq = 0x34,
    kQ931Setup = 0x41,
  };
  [[nodiscard]] static std::uint64_t retx_key(RetxKind kind, Imsi imsi) {
    return (static_cast<std::uint64_t>(kind) << 56) | imsi.value();
  }
  /// Arms `resend` under (kind, imsi) with the standard give-up: abort the
  /// subscriber's current procedure (the peer stayed silent through every
  /// backoff step — same outcome as the guard, reached much sooner).
  void arm_request(RetxKind kind, Imsi imsi, std::function<void()> resend);
  /// Cancels every pending request for `imsi` (all kinds).  Called whenever
  /// a procedure is torn down through another path, so a stale give-up
  /// cannot fire into a later, unrelated procedure.
  void drop_requests(Imsi imsi);
  [[nodiscard]] Retransmitter& retx() { return retx_; }

 private:
  void remove_subscriber(Imsi imsi);
  void arm_procedure_guard(MsContext& ctx);
  void disarm_procedure_guard(MsContext& ctx) { ++ctx.guard_epoch; }
  void abort_procedure(MsContext& ctx);
  void begin_auth(MsContext& ctx);
  void continue_after_security(MsContext& ctx);
  void send_ula(MsContext& ctx);
  void handle_a_message(const Envelope& env);
  bool handle_map_message(const Envelope& env);
  bool handle_handover(const Envelope& env);
  void clear_radio(MsContext& ctx);

  Config config_;
  Retransmitter retx_{*this};
  // Subscriber-proportional state lives in pooled slab tables; the cell
  // provisioning maps stay plain (small, configuration-time only).
  SubscriberTable<Imsi, MsContext> contexts_;
  SubscriberTable<CallRef, Imsi> call_index_;
  std::unordered_map<CellId, std::string> own_cells_;
  std::unordered_map<CellId, std::string> remote_cells_;
  // cookie -> (imsi, guard epoch at arm time)
  SubscriberTable<std::uint64_t, std::pair<Imsi, std::uint64_t>> guards_;
  // Anchor-side handoff supervision, keyed like guards_ but invalidated by
  // MsContext::handoff_epoch so a completed or failed attempt makes any
  // armed timer a no-op.
  SubscriberTable<std::uint64_t, std::pair<Imsi, std::uint64_t>>
      handoff_guards_;
  std::uint64_t next_guard_cookie_ = 1;
};

}  // namespace vgprs
