// GSM authentication: toy A3/A8.  Real networks use COMP128 variants inside
// the SIM and AuC; the security properties are irrelevant to the paper's
// procedures, but the *protocol shape* (RAND challenge -> SRES response,
// derived Kc ciphering key, triplet batching) is preserved exactly.
#pragma once

#include <cstdint>

#include "gsm/types.hpp"

namespace vgprs {

/// Mixes Ki and RAND; both A3 (SRES) and A8 (Kc) are projections of this.
[[nodiscard]] constexpr std::uint64_t gsm_a3a8_core(std::uint64_t ki,
                                                    std::uint64_t rand) {
  std::uint64_t x = ki ^ (rand * 0x9E3779B97F4A7C15ULL);
  x ^= x >> 29;
  x *= 0xBF58476D1CE4E5B9ULL;
  x ^= x >> 32;
  x *= 0x94D049BB133111EBULL;
  x ^= x >> 29;
  return x;
}

/// A3: signed response to a challenge.
[[nodiscard]] constexpr std::uint32_t gsm_a3_sres(std::uint64_t ki,
                                                  std::uint64_t rand) {
  return static_cast<std::uint32_t>(gsm_a3a8_core(ki, rand) >> 32);
}

/// A8: ciphering key derivation.
[[nodiscard]] constexpr std::uint64_t gsm_a8_kc(std::uint64_t ki,
                                                std::uint64_t rand) {
  return gsm_a3a8_core(ki, rand) * 0xD6E8FEB86659FD93ULL;
}

/// AuC: builds a triplet for a subscriber key and a challenge.
[[nodiscard]] constexpr AuthTriplet make_triplet(std::uint64_t ki,
                                                 std::uint64_t rand) {
  return AuthTriplet{rand, gsm_a3_sres(ki, rand), gsm_a8_kc(ki, rand)};
}

}  // namespace vgprs
