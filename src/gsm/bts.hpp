// Base Transceiver Station: terminates the Um air interface and relays
// signaling to/from its BSC over Abis.  One BTS serves one cell.  The BTS
// learns which simulated MS node carries which IMSI from uplink traffic and
// uses that to address downlink messages; paging is broadcast to every MS
// in the cell, as on a real paging channel.
#pragma once

#include <string>
#include <unordered_map>

#include "gsm/messages.hpp"
#include "sim/network.hpp"

namespace vgprs {

class Bts final : public Node {
 public:
  Bts(std::string name, CellId cell, LocationAreaId lai, std::string bsc_name)
      : Node(std::move(name)),
        cell_(cell),
        lai_(lai),
        bsc_name_(std::move(bsc_name)) {}

  [[nodiscard]] CellId cell() const { return cell_; }
  [[nodiscard]] LocationAreaId lai() const { return lai_; }

  void on_message(const Envelope& env) override;

 private:
  [[nodiscard]] NodeId bsc() const;
  void note_ms(const Imsi& imsi, NodeId node) { ms_by_imsi_[imsi] = node; }
  [[nodiscard]] NodeId ms_node(const Imsi& imsi) const;
  void broadcast_paging(const PagingInfo& info);

  /// Relays env's message as a `To` carrying the same payload.
  template <typename From, typename To>
  bool relay(const Envelope& env, NodeId dest) {
    const auto* m = dynamic_cast<const From*>(env.msg.get());
    if (m == nullptr) return false;
    auto out = pool_message<To>();
    static_cast<typename To::payload_type&>(*out) =
        static_cast<const typename From::payload_type&>(*m);
    send(dest, std::move(out));
    return true;
  }

  /// Uplink variant: also records the MS node for downlink addressing.
  template <typename From, typename To>
  bool relay_up(const Envelope& env) {
    const auto* m = dynamic_cast<const From*>(env.msg.get());
    if (m == nullptr) return false;
    note_ms(m->imsi, env.from);
    return relay<From, To>(env, bsc());
  }

  template <typename From, typename To>
  bool relay_down(const Envelope& env) {
    const auto* m = dynamic_cast<const From*>(env.msg.get());
    if (m == nullptr) return false;
    NodeId ms = ms_node(m->imsi);
    if (!ms.valid()) return true;  // MS left the cell; drop
    return relay<From, To>(env, ms);
  }

  CellId cell_;
  LocationAreaId lai_;
  std::string bsc_name_;
  std::unordered_map<Imsi, NodeId> ms_by_imsi_;
};

}  // namespace vgprs
