#include "gsm/hlr.hpp"

#include "common/log.hpp"
#include "gsm/auth.hpp"

namespace vgprs {

void Hlr::provision(Imsi imsi, std::uint64_t ki, SubscriberProfile profile) {
  by_msisdn_[profile.msisdn] = imsi;
  records_[imsi] = SubscriberRecord{ki, std::move(profile), "", "", ""};
}

const Hlr::SubscriberRecord* Hlr::record(Imsi imsi) const {
  return records_.find(imsi);
}

std::optional<Imsi> Hlr::imsi_of(Msisdn msisdn) const {
  const Imsi* imsi = by_msisdn_.find(msisdn);
  if (imsi == nullptr) return std::nullopt;
  return *imsi;
}

bool Hlr::interrogation_allowed(NodeId requester) {
  if (!imsi_confidentiality_) return true;
  Node* n = net().node(requester);
  if (n != nullptr && trusted_peers_.contains(n->name())) return true;
  ++refused_interrogations_;
  return false;
}

void Hlr::on_message(const Envelope& env) {
  const Message& msg = *env.msg;

  if (const auto* req = dynamic_cast<const MapSendAuthInfo*>(&msg)) {
    const SubscriberRecord* rec = records_.find(req->imsi);
    auto ack = pool_message<MapSendAuthInfoAck>();
    ack->imsi = req->imsi;
    if (rec != nullptr) {
      for (int i = 0; i < 3; ++i) {
        ack->triplets.push_back(
            make_triplet(rec->ki, net().rng().next_u64()));
      }
    }
    send(env.from, std::move(ack));
    return;
  }

  if (const auto* ul = dynamic_cast<const MapUpdateLocation*>(&msg)) {
    SubscriberRecord* rec = records_.find(ul->imsi);
    if (rec == nullptr) {
      auto nack = pool_message<MapUpdateLocationAck>();
      nack->imsi = ul->imsi;
      nack->success = false;
      nack->cause = 1;  // unknown subscriber
      send(env.from, std::move(nack));
      return;
    }
    // Cancel the registration at the previous VLR, if it moved.
    if (!rec->vlr_name.empty() && rec->vlr_name != ul->vlr_name) {
      if (Node* old_vlr = net().node_by_name(rec->vlr_name)) {
        auto cancel = pool_message<MapCancelLocation>();
        cancel->imsi = ul->imsi;
        send(old_vlr->id(), std::move(cancel));
      }
    }
    rec->vlr_name = ul->vlr_name;
    rec->msc_name = ul->msc_name;
    pending_updates_[ul->imsi] = PendingUpdate{env.from, ul->imsi};
    auto isd = pool_message<MapInsertSubsData>();
    isd->imsi = ul->imsi;
    isd->profile = rec->profile;
    send(env.from, std::move(isd));
    return;
  }

  if (const auto* ack = dynamic_cast<const MapInsertSubsDataAck*>(&msg)) {
    const PendingUpdate* pending = pending_updates_.find(ack->imsi);
    if (pending == nullptr) return;
    auto done = pool_message<MapUpdateLocationAck>();
    done->imsi = ack->imsi;
    done->success = true;
    send(pending->requester, std::move(done));
    pending_updates_.erase(ack->imsi);
    return;
  }

  if (dynamic_cast<const MapCancelLocationAck*>(&msg) != nullptr) {
    return;  // nothing pending on it
  }

  if (const auto* sri =
          dynamic_cast<const MapSendRoutingInformation*>(&msg)) {
    auto imsi = imsi_of(sri->msisdn);
    const SubscriberRecord* rec =
        imsi.has_value() ? record(*imsi) : nullptr;
    if (!interrogation_allowed(env.from)) rec = nullptr;
    if (rec == nullptr || (rec->vlr_name.empty() && rec->sgsn_name.empty())) {
      auto nack = pool_message<MapSendRoutingInformationAck>();
      nack->msisdn = sri->msisdn;
      nack->found = false;
      send(env.from, std::move(nack));
      return;
    }
    if (rec->vlr_name.empty()) {
      // Packet-only registration (3G TR 23.821 style): no roaming number
      // exists; return the IMSI so the requester can drive GPRS-side
      // delivery.  Note this hands the confidential IMSI to whoever asks —
      // the paper's Section 6 objection to the TR architecture.
      auto ack = pool_message<MapSendRoutingInformationAck>();
      ack->msisdn = sri->msisdn;
      ack->imsi = *imsi;
      ack->found = true;
      send(env.from, std::move(ack));
      return;
    }
    Node* vlr = net().node_by_name(rec->vlr_name);
    if (vlr == nullptr) {
      VG_ERROR("hlr", name() << ": VLR " << rec->vlr_name << " missing");
      return;
    }
    pending_sri_[*imsi] = PendingSri{env.from, sri->msisdn};
    auto prn = pool_message<MapProvideRoamingNumber>();
    prn->imsi = *imsi;
    prn->msisdn = sri->msisdn;
    send(vlr->id(), std::move(prn));
    return;
  }

  if (const auto* prn_ack =
          dynamic_cast<const MapProvideRoamingNumberAck*>(&msg)) {
    const PendingSri* pending = pending_sri_.find(prn_ack->imsi);
    if (pending == nullptr) return;
    const SubscriberRecord* rec = record(prn_ack->imsi);
    auto ack = pool_message<MapSendRoutingInformationAck>();
    ack->msisdn = pending->msisdn;
    ack->imsi = prn_ack->imsi;
    ack->msrn = prn_ack->msrn;
    ack->serving_msc = rec != nullptr ? rec->msc_name : "";
    ack->found = true;
    send(pending->requester, std::move(ack));
    pending_sri_.erase(prn_ack->imsi);
    return;
  }

  if (const auto* req =
          dynamic_cast<const MapSendRoutingInfoForGprs*>(&msg)) {
    auto ack = pool_message<MapSendRoutingInfoForGprsAck>();
    ack->imsi = req->imsi;
    const SubscriberRecord* rec = record(req->imsi);
    if (!interrogation_allowed(env.from)) rec = nullptr;
    if (rec != nullptr && !rec->sgsn_name.empty()) {
      ack->sgsn_name = rec->sgsn_name;
      ack->found = true;
    }
    send(env.from, std::move(ack));
    return;
  }

  if (const auto* gprs = dynamic_cast<const MapUpdateGprsLocation*>(&msg)) {
    auto ack = pool_message<MapUpdateGprsLocationAck>();
    ack->imsi = gprs->imsi;
    SubscriberRecord* rec = records_.find(gprs->imsi);
    if (rec == nullptr) {
      ack->success = false;
      ack->cause = 1;
    } else {
      rec->sgsn_name = gprs->sgsn_name;
      ack->success = true;
    }
    send(env.from, std::move(ack));
    return;
  }

  VG_WARN("hlr", name() << ": unhandled " << msg.name());
}

}  // namespace vgprs
