#include "gsm/hlr.hpp"

#include "common/log.hpp"
#include "gsm/auth.hpp"

namespace vgprs {

void Hlr::provision(Imsi imsi, std::uint64_t ki, SubscriberProfile profile) {
  by_msisdn_[profile.msisdn] = imsi;
  records_[imsi] = SubscriberRecord{ki, std::move(profile), "", "", ""};
}

const Hlr::SubscriberRecord* Hlr::record(Imsi imsi) const {
  auto it = records_.find(imsi);
  return it == records_.end() ? nullptr : &it->second;
}

std::optional<Imsi> Hlr::imsi_of(Msisdn msisdn) const {
  auto it = by_msisdn_.find(msisdn);
  if (it == by_msisdn_.end()) return std::nullopt;
  return it->second;
}

bool Hlr::interrogation_allowed(NodeId requester) {
  if (!imsi_confidentiality_) return true;
  Node* n = net().node(requester);
  if (n != nullptr && trusted_peers_.contains(n->name())) return true;
  ++refused_interrogations_;
  return false;
}

void Hlr::on_message(const Envelope& env) {
  const Message& msg = *env.msg;

  if (const auto* req = dynamic_cast<const MapSendAuthInfo*>(&msg)) {
    auto it = records_.find(req->imsi);
    auto ack = std::make_shared<MapSendAuthInfoAck>();
    ack->imsi = req->imsi;
    if (it != records_.end()) {
      for (int i = 0; i < 3; ++i) {
        ack->triplets.push_back(
            make_triplet(it->second.ki, net().rng().next_u64()));
      }
    }
    send(env.from, std::move(ack));
    return;
  }

  if (const auto* ul = dynamic_cast<const MapUpdateLocation*>(&msg)) {
    auto it = records_.find(ul->imsi);
    if (it == records_.end()) {
      auto nack = std::make_shared<MapUpdateLocationAck>();
      nack->imsi = ul->imsi;
      nack->success = false;
      nack->cause = 1;  // unknown subscriber
      send(env.from, std::move(nack));
      return;
    }
    // Cancel the registration at the previous VLR, if it moved.
    if (!it->second.vlr_name.empty() && it->second.vlr_name != ul->vlr_name) {
      if (Node* old_vlr = net().node_by_name(it->second.vlr_name)) {
        auto cancel = std::make_shared<MapCancelLocation>();
        cancel->imsi = ul->imsi;
        send(old_vlr->id(), std::move(cancel));
      }
    }
    it->second.vlr_name = ul->vlr_name;
    it->second.msc_name = ul->msc_name;
    pending_updates_[ul->imsi] = PendingUpdate{env.from, ul->imsi};
    auto isd = std::make_shared<MapInsertSubsData>();
    isd->imsi = ul->imsi;
    isd->profile = it->second.profile;
    send(env.from, std::move(isd));
    return;
  }

  if (const auto* ack = dynamic_cast<const MapInsertSubsDataAck*>(&msg)) {
    auto it = pending_updates_.find(ack->imsi);
    if (it == pending_updates_.end()) return;
    auto done = std::make_shared<MapUpdateLocationAck>();
    done->imsi = ack->imsi;
    done->success = true;
    send(it->second.requester, std::move(done));
    pending_updates_.erase(it);
    return;
  }

  if (dynamic_cast<const MapCancelLocationAck*>(&msg) != nullptr) {
    return;  // nothing pending on it
  }

  if (const auto* sri =
          dynamic_cast<const MapSendRoutingInformation*>(&msg)) {
    auto imsi = imsi_of(sri->msisdn);
    const SubscriberRecord* rec =
        imsi.has_value() ? record(*imsi) : nullptr;
    if (!interrogation_allowed(env.from)) rec = nullptr;
    if (rec == nullptr || (rec->vlr_name.empty() && rec->sgsn_name.empty())) {
      auto nack = std::make_shared<MapSendRoutingInformationAck>();
      nack->msisdn = sri->msisdn;
      nack->found = false;
      send(env.from, std::move(nack));
      return;
    }
    if (rec->vlr_name.empty()) {
      // Packet-only registration (3G TR 23.821 style): no roaming number
      // exists; return the IMSI so the requester can drive GPRS-side
      // delivery.  Note this hands the confidential IMSI to whoever asks —
      // the paper's Section 6 objection to the TR architecture.
      auto ack = std::make_shared<MapSendRoutingInformationAck>();
      ack->msisdn = sri->msisdn;
      ack->imsi = *imsi;
      ack->found = true;
      send(env.from, std::move(ack));
      return;
    }
    Node* vlr = net().node_by_name(rec->vlr_name);
    if (vlr == nullptr) {
      VG_ERROR("hlr", name() << ": VLR " << rec->vlr_name << " missing");
      return;
    }
    pending_sri_[*imsi] = PendingSri{env.from, sri->msisdn};
    auto prn = std::make_shared<MapProvideRoamingNumber>();
    prn->imsi = *imsi;
    prn->msisdn = sri->msisdn;
    send(vlr->id(), std::move(prn));
    return;
  }

  if (const auto* prn_ack =
          dynamic_cast<const MapProvideRoamingNumberAck*>(&msg)) {
    auto it = pending_sri_.find(prn_ack->imsi);
    if (it == pending_sri_.end()) return;
    const SubscriberRecord* rec = record(prn_ack->imsi);
    auto ack = std::make_shared<MapSendRoutingInformationAck>();
    ack->msisdn = it->second.msisdn;
    ack->imsi = prn_ack->imsi;
    ack->msrn = prn_ack->msrn;
    ack->serving_msc = rec != nullptr ? rec->msc_name : "";
    ack->found = true;
    send(it->second.requester, std::move(ack));
    pending_sri_.erase(it);
    return;
  }

  if (const auto* req =
          dynamic_cast<const MapSendRoutingInfoForGprs*>(&msg)) {
    auto ack = std::make_shared<MapSendRoutingInfoForGprsAck>();
    ack->imsi = req->imsi;
    const SubscriberRecord* rec = record(req->imsi);
    if (!interrogation_allowed(env.from)) rec = nullptr;
    if (rec != nullptr && !rec->sgsn_name.empty()) {
      ack->sgsn_name = rec->sgsn_name;
      ack->found = true;
    }
    send(env.from, std::move(ack));
    return;
  }

  if (const auto* gprs = dynamic_cast<const MapUpdateGprsLocation*>(&msg)) {
    auto ack = std::make_shared<MapUpdateGprsLocationAck>();
    ack->imsi = gprs->imsi;
    auto it = records_.find(gprs->imsi);
    if (it == records_.end()) {
      ack->success = false;
      ack->cause = 1;
    } else {
      it->second.sgsn_name = gprs->sgsn_name;
      ack->success = true;
    }
    send(env.from, std::move(ack));
    return;
  }

  VG_WARN("hlr", name() << ": unhandled " << msg.name());
}

}  // namespace vgprs
