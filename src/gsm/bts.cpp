#include "gsm/bts.hpp"

#include <stdexcept>

#include "common/log.hpp"

namespace vgprs {

NodeId Bts::bsc() const {
  Node* n = net().node_by_name(bsc_name_);
  if (n == nullptr) throw std::logic_error(name() + ": no BSC " + bsc_name_);
  return n->id();
}

NodeId Bts::ms_node(const Imsi& imsi) const {
  auto it = ms_by_imsi_.find(imsi);
  return it == ms_by_imsi_.end() ? NodeId{} : it->second;
}

void Bts::broadcast_paging(const PagingInfo& info) {
  // The paging channel reaches every MS camped on the cell; each MS filters
  // on its own identity.
  NodeId bsc_id = bsc();
  for (NodeId n : net().neighbors(id())) {
    if (n == bsc_id) continue;
    auto out = pool_message<UmPagingRequest>();
    static_cast<PagingInfo&>(*out) = info;
    send(n, std::move(out));
  }
}

void Bts::on_message(const Envelope& env) {
  // Stamp the serving cell into uplink location/paging payloads before the
  // generic relay (the MS does not know the cell identity; the BTS does).
  if (const auto* lu =
          dynamic_cast<const UmLocationUpdateRequest*>(env.msg.get())) {
    note_ms(lu->imsi, env.from);
    auto out = pool_message<AbisLocationUpdate>();
    static_cast<LocationUpdateInfo&>(*out) =
        static_cast<const LocationUpdateInfo&>(*lu);
    out->cell = cell_;
    out->lai = lai_;
    send(bsc(), std::move(out));
    return;
  }
  if (const auto* pr = dynamic_cast<const UmPagingResponse*>(env.msg.get())) {
    note_ms(pr->imsi, env.from);
    auto out = pool_message<AbisPagingResponse>();
    static_cast<PagingResponseInfo&>(*out) =
        static_cast<const PagingResponseInfo&>(*pr);
    out->cell = cell_;
    send(bsc(), std::move(out));
    return;
  }
  if (const auto* ha = dynamic_cast<const UmHandoverAccess*>(env.msg.get())) {
    // Handover access arrives at the *target* BTS: adopt the MS.
    note_ms(ha->imsi, env.from);
    relay<UmHandoverAccess, AbisHandoverAccess>(env, bsc());
    return;
  }
  if (const auto* pg = dynamic_cast<const AbisPaging*>(env.msg.get())) {
    broadcast_paging(*pg);
    return;
  }

  // Uplink: Um -> Abis.
  if (relay_up<UmChannelRequest, AbisChannelRequest>(env)) return;
  if (relay_up<UmAuthResponse, AbisAuthResponse>(env)) return;
  if (relay_up<UmCipherModeComplete, AbisCipherModeComplete>(env)) return;
  if (relay_up<UmCmServiceRequest, AbisCmServiceRequest>(env)) return;
  if (relay_up<UmSetup, AbisSetup>(env)) return;
  if (relay_up<UmCallProceeding, AbisCallProceeding>(env)) return;
  if (relay_up<UmAlerting, AbisAlerting>(env)) return;
  if (relay_up<UmConnect, AbisConnect>(env)) return;
  if (relay_up<UmConnectAck, AbisConnectAck>(env)) return;
  if (relay_up<UmDisconnect, AbisDisconnect>(env)) return;
  if (relay_up<UmRelease, AbisRelease>(env)) return;
  if (relay_up<UmReleaseComplete, AbisReleaseComplete>(env)) return;
  if (relay_up<UmAssignmentComplete, AbisAssignmentComplete>(env)) return;
  if (relay_up<UmHandoverComplete, AbisHandoverComplete>(env)) return;
  if (relay_up<UmVoiceFrame, AbisVoiceFrame>(env)) return;
  if (relay_up<UmImsiDetach, AbisImsiDetach>(env)) return;

  // Downlink: Abis -> Um.
  if (relay_down<AbisImmediateAssignment, UmImmediateAssignment>(env)) return;
  if (relay_down<AbisLocationUpdateAccept, UmLocationUpdateAccept>(env))
    return;
  if (relay_down<AbisAuthRequest, UmAuthRequest>(env)) return;
  if (relay_down<AbisCipherModeCommand, UmCipherModeCommand>(env)) return;
  if (relay_down<AbisCmServiceAccept, UmCmServiceAccept>(env)) return;
  if (relay_down<AbisSetup, UmSetup>(env)) return;
  if (relay_down<AbisCallProceeding, UmCallProceeding>(env)) return;
  if (relay_down<AbisAlerting, UmAlerting>(env)) return;
  if (relay_down<AbisConnect, UmConnect>(env)) return;
  if (relay_down<AbisConnectAck, UmConnectAck>(env)) return;
  if (relay_down<AbisDisconnect, UmDisconnect>(env)) return;
  if (relay_down<AbisRelease, UmRelease>(env)) return;
  if (relay_down<AbisReleaseComplete, UmReleaseComplete>(env)) return;
  if (relay_down<AbisAssignmentCommand, UmAssignmentCommand>(env)) return;
  if (relay_down<AbisHandoverCommand, UmHandoverCommand>(env)) return;
  if (relay_down<AbisVoiceFrame, UmVoiceFrame>(env)) return;
  if (relay_down<AbisLocationUpdateReject, UmLocationUpdateReject>(env))
    return;
  if (relay_down<AbisCmServiceReject, UmCmServiceReject>(env)) return;

  VG_WARN("bts", name() << ": unhandled " << env.msg->name());
}

}  // namespace vgprs
