#include "gsm/msc_base.hpp"

#include <stdexcept>

#include "common/log.hpp"
#include "gsm/auth.hpp"

namespace vgprs {

void MscBase::adopt_cell(CellId cell, std::string bsc_name) {
  own_cells_[cell] = std::move(bsc_name);
}

void MscBase::add_remote_cell(CellId cell, std::string msc_name) {
  remote_cells_[cell] = std::move(msc_name);
}

const MscBase::MsContext* MscBase::context_of(Imsi imsi) const {
  return contexts_.find(imsi);
}

MscBase::MsContext* MscBase::context(Imsi imsi) {
  return contexts_.find(imsi);
}

MscBase::MsContext* MscBase::context_by_call(CallRef call_ref) {
  const Imsi* imsi = call_index_.find(call_ref);
  return imsi == nullptr ? nullptr : context(*imsi);
}

NodeId MscBase::vlr() const {
  Node* n = net().node_by_name(config_.vlr_name);
  if (n == nullptr) throw std::logic_error(name() + ": no VLR");
  return n->id();
}

NodeId MscBase::downlink(const MsContext& ctx) const {
  return ctx.handed_off ? ctx.remote_msc : ctx.bsc;
}

// --- request retransmission ---------------------------------------------------

void MscBase::arm_request(RetxKind kind, Imsi imsi,
                          std::function<void()> resend) {
  retx_.arm(retx_key(kind, imsi), std::move(resend), [this, imsi] {
    MsContext* ctx = context(imsi);
    if (ctx == nullptr || ctx->proc == Proc::kNone ||
        ctx->step == Step::kActive) {
      return;
    }
    abort_procedure(*ctx);
  });
}

void MscBase::drop_requests(Imsi imsi) {
  for (RetxKind kind :
       {RetxKind::kMapAuth, RetxKind::kMapUla, RetxKind::kMapOutCall,
        RetxKind::kGprsAttach, RetxKind::kPdpActivateSig,
        RetxKind::kPdpActivateVoice, RetxKind::kPdpDeactivateSig,
        RetxKind::kPdpDeactivateVoice, RetxKind::kGprsDetach,
        RetxKind::kRasRrq, RetxKind::kRasArq, RetxKind::kRasDrq,
        RetxKind::kRasUrq, RetxKind::kQ931Setup}) {
    retx_.ack(retx_key(kind, imsi));
  }
}

// --- security sub-procedure --------------------------------------------------

void MscBase::begin_auth(MsContext& ctx) {
  ctx.step = Step::kAuthInfo;
  auto req = pool_message<MapSendAuthInfo>();
  req->imsi = ctx.imsi;
  send(vlr(), std::move(req));
  arm_request(RetxKind::kMapAuth, ctx.imsi, [this, imsi = ctx.imsi] {
    MsContext* c = context(imsi);
    if (c == nullptr || c->step != Step::kAuthInfo) return;
    auto again = pool_message<MapSendAuthInfo>();
    again->imsi = imsi;
    send(vlr(), std::move(again));
  });
}

void MscBase::continue_after_security(MsContext& ctx) {
  switch (ctx.proc) {
    case Proc::kRegister:
      send_ula(ctx);
      break;
    case Proc::kMoCall: {
      ctx.step = Step::kAwaitSetup;
      auto acc = pool_message<ACmServiceAccept>();
      acc->imsi = ctx.imsi;
      send(ctx.bsc, std::move(acc));
      break;
    }
    case Proc::kMtCall: {
      // Deliver the call: Setup plus early traffic-channel assignment
      // (paper step 4.5: "traffic channel assignment ... The VMSC sends
      // A_Setup to the BSC").
      ctx.step = Step::kAwaitAlert;
      auto setup = pool_message<ASetup>();
      setup->imsi = ctx.imsi;
      setup->call_ref = ctx.call_ref;
      setup->calling = ctx.calling;
      send(ctx.bsc, std::move(setup));
      auto assign = pool_message<AAssignmentRequest>();
      assign->imsi = ctx.imsi;
      assign->call_ref = ctx.call_ref;
      send(ctx.bsc, std::move(assign));
      break;
    }
    case Proc::kNone:
      break;
  }
}

void MscBase::send_ula(MsContext& ctx) {
  ctx.step = Step::kUla;
  auto ula = pool_message<MapUpdateLocationArea>();
  ula->imsi = ctx.imsi;
  ula->lai = ctx.lai;
  ula->msc_name = name();
  send(vlr(), std::move(ula));
  arm_request(RetxKind::kMapUla, ctx.imsi, [this, imsi = ctx.imsi] {
    MsContext* c = context(imsi);
    if (c == nullptr || c->step != Step::kUla) return;
    auto again = pool_message<MapUpdateLocationArea>();
    again->imsi = imsi;
    again->lai = c->lai;
    again->msc_name = name();
    send(vlr(), std::move(again));
  });
}

void MscBase::finish_registration(MsContext& ctx) {
  disarm_procedure_guard(ctx);
  ++net().metrics().counter(name() + "/registrations_accepted");
  ctx.registered = true;
  ctx.proc = Proc::kNone;
  ctx.step = Step::kNone;
  auto acc = pool_message<ALocationUpdateAccept>();
  acc->imsi = ctx.imsi;
  acc->lai = ctx.lai;
  acc->new_tmsi = ctx.tmsi;
  send(ctx.bsc, std::move(acc));
  if (on_ms_registered) on_ms_registered(ctx);
}

void MscBase::reject_registration(MsContext& ctx, std::uint8_t cause) {
  drop_requests(ctx.imsi);
  disarm_procedure_guard(ctx);
  ctx.proc = Proc::kNone;
  ctx.step = Step::kNone;
  ctx.registered = false;
  auto rej = pool_message<ALocationUpdateReject>();
  rej->imsi = ctx.imsi;
  rej->cause = cause;
  send(ctx.bsc, std::move(rej));
}

// --- MO helpers ----------------------------------------------------------------

void MscBase::notify_mo_alerting(MsContext& ctx) {
  auto alert = pool_message<AAlerting>();
  alert->imsi = ctx.imsi;
  alert->call_ref = ctx.call_ref;
  send(downlink(ctx), std::move(alert));
}

void MscBase::notify_mo_connect(MsContext& ctx) {
  disarm_procedure_guard(ctx);
  ctx.step = Step::kActive;
  auto conn = pool_message<AConnect>();
  conn->imsi = ctx.imsi;
  conn->call_ref = ctx.call_ref;
  send(downlink(ctx), std::move(conn));
}

void MscBase::reject_mo_call(MsContext& ctx, ClearCause cause) {
  release_from_network(ctx, cause);
}

// --- MT entry point ---------------------------------------------------------------

bool MscBase::start_mt_call(Imsi imsi, Msisdn calling, CallRef call_ref) {
  MsContext* ctx = context(imsi);
  if (ctx == nullptr || !ctx->registered || ctx->proc != Proc::kNone) {
    return false;
  }
  ctx->proc = Proc::kMtCall;
  arm_procedure_guard(*ctx);
  net().spans().open(SpanKind::kTermination, imsi.value(), name(), now());
  ++net().metrics().counter(name() + "/mt_calls_started");
  ctx->step = Step::kPaging;
  ctx->call_ref = call_ref;
  ctx->calling = calling;
  call_index_[call_ref] = imsi;
  auto page = pool_message<APaging>();
  page->imsi = imsi;
  page->tmsi = ctx->tmsi;
  send(ctx->bsc, std::move(page));
  return true;
}

// --- release -----------------------------------------------------------------------

void MscBase::complete_ms_release(MsContext& ctx) {
  auto rel = pool_message<ARelease>();
  rel->imsi = ctx.imsi;
  rel->call_ref = ctx.call_ref;
  send(downlink(ctx), std::move(rel));
}

void MscBase::release_from_network(MsContext& ctx, ClearCause cause) {
  arm_procedure_guard(ctx);
  ctx.step = Step::kReleasingNet;
  auto disc = pool_message<ADisconnect>();
  disc->imsi = ctx.imsi;
  disc->call_ref = ctx.call_ref;
  disc->cause = cause;
  send(downlink(ctx), std::move(disc));
}

void MscBase::clear_radio(MsContext& ctx) {
  ctx.step = Step::kClearing;
  auto clear = pool_message<AClearCommand>();
  clear->imsi = ctx.imsi;
  clear->call_ref = ctx.call_ref;
  send(ctx.handed_off ? ctx.remote_msc : ctx.bsc, std::move(clear));
}

void MscBase::send_downlink_voice(MsContext& ctx, std::uint32_t seq,
                                  std::int64_t origin_us,
                                  SimDuration processing) {
  VoiceFrameInfo info;
  info.imsi = ctx.imsi;
  info.call_ref = ctx.call_ref;
  info.uplink = false;
  info.seq = seq;
  info.origin_us = origin_us;
  if (ctx.handed_off) {
    auto out = pool_message<ETrunkVoice>();
    static_cast<VoiceFrameInfo&>(*out) = info;
    send(ctx.remote_msc, std::move(out), processing);
  } else {
    auto out = pool_message<AVoiceFrame>();
    static_cast<VoiceFrameInfo&>(*out) = info;
    send(ctx.bsc, std::move(out), processing);
  }
}

// --- inter-system handoff -------------------------------------------------------------

bool MscBase::handle_handover(const Envelope& env) {
  const Message& msg = *env.msg;

  // Anchor: the serving BSC reports that the MS must move to a cell we do
  // not control.
  if (const auto* req = dynamic_cast<const AHandoverRequired*>(&msg)) {
    MsContext* ctx = context(req->imsi);
    if (ctx == nullptr) return true;
    auto it = remote_cells_.find(req->target_cell);
    if (it == remote_cells_.end()) {
      VG_WARN("msc", name() << ": no MSC for cell "
                            << req->target_cell.to_string());
      return true;
    }
    Node* target = net().node_by_name(it->second);
    if (target == nullptr) return true;
    net().spans().open(SpanKind::kHandoff, req->imsi.value(), name(), now());
    ++net().metrics().counter(name() + "/handoffs_started");
    ctx->handover_target = req->target_cell;
    auto prep = pool_message<MapPrepareHandover>();
    prep->imsi = req->imsi;
    prep->call_ref = req->call_ref;
    prep->target_cell = req->target_cell;
    prep->anchor_msc = name();
    send(target->id(), std::move(prep));
    // The MAP exchange is fire-and-forget per message (the exempted
    // retransmission rows promise the anchor supervises end-to-end):
    // bound the whole attempt so a dead target MSC or lost end signal
    // returns the call to the serving cell instead of wedging it.
    ++ctx->handoff_epoch;
    std::uint64_t cookie = next_guard_cookie_++;
    handoff_guards_[cookie] = {req->imsi, ctx->handoff_epoch};
    set_timer(config_.handoff_guard, cookie);
    return true;
  }

  // Target: the anchor asks us to prepare radio resources.
  if (const auto* prep = dynamic_cast<const MapPrepareHandover*>(&msg)) {
    auto it = own_cells_.find(prep->target_cell);
    auto nack = [&] {
      auto ack = pool_message<MapPrepareHandoverAck>();
      ack->imsi = prep->imsi;
      ack->call_ref = prep->call_ref;
      ack->success = false;
      send(env.from, std::move(ack));
    };
    if (it == own_cells_.end()) {
      nack();
      return true;
    }
    Node* bsc = net().node_by_name(it->second);
    if (bsc == nullptr) {
      nack();
      return true;
    }
    MsContext& ctx = contexts_[prep->imsi];
    ctx.imsi = prep->imsi;
    ctx.handed_in = true;
    ctx.remote_msc = env.from;
    ctx.bsc = bsc->id();
    ctx.cell = prep->target_cell;
    ctx.call_ref = prep->call_ref;
    call_index_[prep->call_ref] = prep->imsi;
    auto req = pool_message<AHandoverRequest>();
    req->imsi = prep->imsi;
    req->call_ref = prep->call_ref;
    req->target_cell = prep->target_cell;
    send(ctx.bsc, std::move(req));
    return true;
  }

  // Target: its BSC reserved (or failed to reserve) a channel.
  if (const auto* ack = dynamic_cast<const AHandoverRequestAck*>(&msg)) {
    MsContext* ctx = context(ack->imsi);
    if (ctx == nullptr || !ctx->handed_in) return true;
    auto out = pool_message<MapPrepareHandoverAck>();
    out->imsi = ack->imsi;
    out->call_ref = ack->call_ref;
    out->channel = ack->channel;
    out->success = ack->channel != 0;
    send(ctx->remote_msc, std::move(out));
    return true;
  }

  // Anchor: resources ready at the target; command the MS over.
  if (const auto* ack = dynamic_cast<const MapPrepareHandoverAck*>(&msg)) {
    MsContext* ctx = context(ack->imsi);
    if (ctx == nullptr) return true;
    if (!ack->success) {
      VG_WARN("msc", name() << ": handover preparation failed for "
                            << ack->imsi.to_string());
      net().spans().close(SpanKind::kHandoff, ack->imsi.value(),
                          SpanOutcome::kRejected, now());
      ctx->handover_target = CellId{};
      ++ctx->handoff_epoch;  // disarm the handoff guard
      return true;
    }
    auto cmd = pool_message<AHandoverCommand>();
    cmd->imsi = ack->imsi;
    cmd->call_ref = ack->call_ref;
    cmd->target_cell = ctx->handover_target;
    cmd->channel = ack->channel;
    send(ctx->bsc, std::move(cmd));
    return true;
  }

  if (const auto* det = dynamic_cast<const AHandoverDetect*>(&msg)) {
    VG_DEBUG("msc", name() << ": handover detect " << det->imsi.to_string());
    return true;
  }

  // Target: the MS completed the move; tell the anchor (MAP E interface).
  if (const auto* done = dynamic_cast<const AHandoverComplete*>(&msg)) {
    MsContext* ctx = context(done->imsi);
    if (ctx == nullptr || !ctx->handed_in) return false;
    auto end = pool_message<MapSendEndSignal>();
    end->imsi = done->imsi;
    end->call_ref = done->call_ref;
    send(ctx->remote_msc, std::move(end));
    return true;
  }

  // Anchor: switch the call path onto the inter-MSC trunk and release the
  // old radio resources.  The anchor stays in the call path (Fig. 9(b)).
  if (const auto* end = dynamic_cast<const MapSendEndSignal*>(&msg)) {
    MsContext* ctx = context(end->imsi);
    if (ctx == nullptr) return true;
    net().spans().close(SpanKind::kHandoff, end->imsi.value(),
                        SpanOutcome::kOk, now());
    ++net().metrics().counter(name() + "/handoffs_completed");
    ++ctx->handoff_epoch;  // disarm the handoff guard
    NodeId old_bsc = ctx->bsc;
    ctx->handed_off = true;
    ctx->remote_msc = env.from;
    auto clear = pool_message<AClearCommand>();
    clear->imsi = end->imsi;
    clear->call_ref = end->call_ref;
    send(old_bsc, std::move(clear));
    return true;
  }

  return false;
}

// --- MAP responses ------------------------------------------------------------------------

bool MscBase::handle_map_message(const Envelope& env) {
  const Message& msg = *env.msg;

  if (const auto* ack = dynamic_cast<const MapSendAuthInfoAck*>(&msg)) {
    retx_.ack(retx_key(RetxKind::kMapAuth, ack->imsi));
    MsContext* ctx = context(ack->imsi);
    if (ctx == nullptr || ctx->step != Step::kAuthInfo) return true;
    if (ack->triplets.empty()) {
      if (ctx->proc == Proc::kRegister) {
        reject_registration(*ctx, 6);  // no auth vectors
      } else {
        auto rej = pool_message<ACmServiceReject>();
        rej->imsi = ctx->imsi;
        rej->cause = 6;
        send(ctx->bsc, std::move(rej));
        ctx->proc = Proc::kNone;
        ctx->step = Step::kNone;
      }
      return true;
    }
    ctx->triplet = ack->triplets.front();
    ctx->has_triplet = true;
    ctx->step = Step::kAuthChallenge;
    auto chal = pool_message<AAuthRequest>();
    chal->imsi = ctx->imsi;
    chal->rand = ctx->triplet.rand;
    send(ctx->bsc, std::move(chal));
    return true;
  }

  if (const auto* ack = dynamic_cast<const MapUpdateLocationAreaAck*>(&msg)) {
    retx_.ack(retx_key(RetxKind::kMapUla, ack->imsi));
    MsContext* ctx = context(ack->imsi);
    if (ctx == nullptr || ctx->step != Step::kUla) return true;
    if (!ack->success) {
      reject_registration(*ctx, ack->cause);
      return true;
    }
    ctx->tmsi = ack->new_tmsi;
    ctx->msisdn = ack->msisdn;
    ctx->step = Step::kSubstrate;
    on_registration_substrate(*ctx);
    return true;
  }

  if (const auto* ack =
          dynamic_cast<const MapSendInfoForOutgoingCallAck*>(&msg)) {
    retx_.ack(retx_key(RetxKind::kMapOutCall, ack->imsi));
    MsContext* ctx = context(ack->imsi);
    if (ctx == nullptr || ctx->step != Step::kAuthorize) return true;
    if (!ack->success) {
      if (ack->cause == 1) {
        // "Unidentified subscriber": the VLR lost its visitor record — a
        // VLR restart while we still believed the MS registered.  GSM
        // 04.08 recovery: reject the MM connection with cause #4 so the
        // MS deletes its TMSI and re-runs the location update.
        ctx->registered = false;
        disarm_procedure_guard(*ctx);
        call_index_.erase(ctx->call_ref);
        ctx->proc = Proc::kNone;
        ctx->step = Step::kNone;
        ctx->call_ref = CallRef{};
        auto rej = pool_message<ACmServiceReject>();
        rej->imsi = ctx->imsi;
        rej->cause = 4;  // IMSI unknown in VLR
        send(ctx->bsc, std::move(rej));
        return true;
      }
      reject_mo_call(*ctx, ClearCause::kCallRejected);
      return true;
    }
    // Call proceeding + traffic channel toward the MS, then let the
    // subclass route the far-end leg.
    auto proceed = pool_message<ACallProceeding>();
    proceed->imsi = ctx->imsi;
    proceed->call_ref = ctx->call_ref;
    send(ctx->bsc, std::move(proceed));
    auto assign = pool_message<AAssignmentRequest>();
    assign->imsi = ctx->imsi;
    assign->call_ref = ctx->call_ref;
    send(ctx->bsc, std::move(assign));
    ctx->step = Step::kMoProgress;
    route_mo_call(*ctx);
    return true;
  }

  return false;
}

// --- A interface ------------------------------------------------------------------------------

void MscBase::arm_procedure_guard(MsContext& ctx) {
  ++ctx.guard_epoch;
  std::uint64_t cookie = next_guard_cookie_++;
  guards_[cookie] = {ctx.imsi, ctx.guard_epoch};
  set_timer(config_.procedure_guard, cookie);
}

void MscBase::abort_procedure(MsContext& ctx) {
  drop_requests(ctx.imsi);
  VG_WARN("msc", name() << ": aborting stalled procedure for "
                        << ctx.imsi.to_string() << " (proc "
                        << static_cast<int>(ctx.proc) << ", step "
                        << static_cast<int>(ctx.step) << ")");
  ++net().metrics().counter(name() + "/procedures_aborted");
  if (ctx.step == Step::kClearing) {
    // The guard expired while waiting for A_Clear_Complete: the answer is
    // lost or the BSC is gone.  Clear locally; re-sending A_Clear_Command
    // without supervision would wedge the context in kClearing forever.
    // (The MT span was already closed by the abort that started clearing.)
    disarm_procedure_guard(ctx);
    call_index_.erase(ctx.call_ref);
    MsContext snapshot = ctx;
    ctx.proc = Proc::kNone;
    ctx.step = Step::kNone;
    ctx.call_ref = CallRef{};
    ctx.handed_off = false;
    on_call_cleared(snapshot);
    return;
  }
  if (ctx.proc == Proc::kMtCall) {
    net().spans().close(SpanKind::kTermination, ctx.imsi.value(),
                        SpanOutcome::kTimeout, now());
  }
  if (ctx.proc == Proc::kRegister) {
    ctx.proc = Proc::kNone;
    ctx.step = Step::kNone;
    return;
  }
  on_call_aborted(ctx);
  clear_radio(ctx);
  // The clearing handshake is itself a transient step: supervise it so a
  // lost A_Clear_Complete ends in the local force-clear above.
  arm_procedure_guard(ctx);
}

void MscBase::on_timer(TimerId, std::uint64_t cookie) {
  if (retx_.on_timer(cookie)) return;
  if (const auto* guard = guards_.find(cookie); guard != nullptr) {
    auto [imsi, epoch] = *guard;
    guards_.erase(cookie);
    MsContext* ctx = context(imsi);
    if (ctx == nullptr || ctx->guard_epoch != epoch) return;
    if (ctx->proc == Proc::kNone || ctx->step == Step::kActive) return;
    abort_procedure(*ctx);
    return;
  }
  if (const auto* guard = handoff_guards_.find(cookie); guard != nullptr) {
    auto [imsi, epoch] = *guard;
    handoff_guards_.erase(cookie);
    MsContext* ctx = context(imsi);
    if (ctx == nullptr || ctx->handoff_epoch != epoch) return;
    if (ctx->handed_off || !ctx->handover_target.valid()) return;
    VG_WARN("msc", name() << ": handoff attempt for " << imsi.to_string()
                          << " timed out; keeping call on serving cell");
    net().spans().close(SpanKind::kHandoff, imsi.value(),
                        SpanOutcome::kTimeout, now());
    ++net().metrics().counter(name() + "/handoffs_failed");
    ctx->handover_target = CellId{};
  }
}

void MscBase::on_restart() {
  // Everything keyed by a live subscriber is volatile: contexts, the call
  // index, armed guards and pending retransmissions.  Clearing the cookie
  // maps makes timers armed before the crash fire as no-ops.  Cell
  // provisioning (own_cells_ / remote_cells_) is configuration and
  // survives, as does next_guard_cookie_ so recycled cookies stay unique.
  contexts_.clear();
  call_index_.clear();
  guards_.clear();
  handoff_guards_.clear();
  retx_.reset();
}

void MscBase::remove_subscriber(Imsi imsi) {
  drop_requests(imsi);
  const MsContext* ctx = contexts_.find(imsi);
  if (ctx == nullptr) return;
  MsContext snapshot = *ctx;
  if (snapshot.call_ref.valid()) call_index_.erase(snapshot.call_ref);
  contexts_.erase(imsi);
  on_subscriber_removed(snapshot);
}

void MscBase::handle_a_message(const Envelope& env) {
  const Message& msg = *env.msg;

  if (const auto* detach = dynamic_cast<const AImsiDetach*>(&msg)) {
    remove_subscriber(detach->imsi);
    return;
  }
  if (const auto* cancel = dynamic_cast<const MapCancelLocation*>(&msg)) {
    remove_subscriber(cancel->imsi);
    return;
  }

  if (const auto* lu = dynamic_cast<const ALocationUpdate*>(&msg)) {
    MsContext& ctx = contexts_[lu->imsi];
    ctx.imsi = lu->imsi;
    ctx.lai = lu->lai;
    ctx.cell = lu->cell;
    ctx.bsc = env.from;
    ctx.proc = Proc::kRegister;
    arm_procedure_guard(ctx);
    if (config_.authenticate_registration) {
      begin_auth(ctx);
    } else {
      send_ula(ctx);
    }
    return;
  }

  if (const auto* rsp = dynamic_cast<const AAuthResponse*>(&msg)) {
    MsContext* ctx = context(rsp->imsi);
    if (ctx == nullptr || ctx->step != Step::kAuthChallenge) return;
    if (!ctx->has_triplet || rsp->sres != ctx->triplet.sres) {
      VG_WARN("msc", name() << ": authentication failure for "
                            << rsp->imsi.to_string());
      if (ctx->proc == Proc::kRegister) {
        reject_registration(*ctx, 6);
      } else {
        auto rej = pool_message<ACmServiceReject>();
        rej->imsi = ctx->imsi;
        rej->cause = 6;
        send(ctx->bsc, std::move(rej));
        ctx->proc = Proc::kNone;
        ctx->step = Step::kNone;
      }
      return;
    }
    if (config_.ciphering) {
      ctx->step = Step::kCipher;
      auto cmd = pool_message<ACipherModeCommand>();
      cmd->imsi = ctx->imsi;
      cmd->algorithm = 1;
      send(ctx->bsc, std::move(cmd));
    } else {
      continue_after_security(*ctx);
    }
    return;
  }

  if (const auto* done = dynamic_cast<const ACipherModeComplete*>(&msg)) {
    MsContext* ctx = context(done->imsi);
    if (ctx == nullptr || ctx->step != Step::kCipher) return;
    continue_after_security(*ctx);
    return;
  }

  if (const auto* req = dynamic_cast<const ACmServiceRequest*>(&msg)) {
    MsContext* ctx = context(req->imsi);
    if (ctx == nullptr || !ctx->registered || ctx->proc != Proc::kNone) {
      auto rej = pool_message<ACmServiceReject>();
      rej->imsi = req->imsi;
      rej->cause = ctx == nullptr || !ctx->registered ? 4 : 17;
      send(env.from, std::move(rej));
      return;
    }
    ctx->bsc = env.from;
    ctx->proc = Proc::kMoCall;
    arm_procedure_guard(*ctx);
    if (config_.authenticate_calls) {
      begin_auth(*ctx);
    } else {
      continue_after_security(*ctx);
    }
    return;
  }

  if (const auto* setup = dynamic_cast<const ASetup*>(&msg)) {
    MsContext* ctx = context(setup->imsi);
    if (ctx == nullptr || !ctx->registered) {
      // A Setup for a subscriber this switch has no registered context
      // for: the switch restarted after accepting the CM service request.
      // Cause #4 pushes the MS to delete its TMSI and re-register.
      auto rej = pool_message<ACmServiceReject>();
      rej->imsi = setup->imsi;
      rej->cause = 4;  // IMSI unknown in VLR
      send(env.from, std::move(rej));
      return;
    }
    if (ctx->step != Step::kAwaitSetup) return;
    ctx->call_ref = setup->call_ref;
    ctx->calling = setup->calling;
    ctx->called = setup->called;
    call_index_[setup->call_ref] = setup->imsi;
    ctx->step = Step::kAuthorize;
    auto q = pool_message<MapSendInfoForOutgoingCall>();
    q->imsi = setup->imsi;
    q->called = setup->called;
    send(vlr(), std::move(q));
    arm_request(RetxKind::kMapOutCall, setup->imsi,
                [this, imsi = setup->imsi] {
                  MsContext* c = context(imsi);
                  if (c == nullptr || c->step != Step::kAuthorize) return;
                  auto again = pool_message<MapSendInfoForOutgoingCall>();
                  again->imsi = imsi;
                  again->called = c->called;
                  send(vlr(), std::move(again));
                });
    return;
  }

  if (const auto* rsp = dynamic_cast<const APagingResponse*>(&msg)) {
    MsContext* ctx = context(rsp->imsi);
    if (ctx == nullptr || ctx->step != Step::kPaging) return;
    ctx->cell = rsp->cell;
    ctx->bsc = env.from;
    if (config_.authenticate_calls) {
      begin_auth(*ctx);
    } else {
      continue_after_security(*ctx);
    }
    return;
  }

  if (const auto* alert = dynamic_cast<const AAlerting*>(&msg)) {
    MsContext* ctx = context(alert->imsi);
    if (ctx == nullptr || ctx->proc != Proc::kMtCall ||
        ctx->step != Step::kAwaitAlert) {
      return;
    }
    ctx->step = Step::kAwaitAnswer;
    on_mt_alerting(*ctx);
    return;
  }

  if (const auto* conn = dynamic_cast<const AConnect*>(&msg)) {
    MsContext* ctx = context(conn->imsi);
    if (ctx == nullptr || ctx->proc != Proc::kMtCall ||
        ctx->step != Step::kAwaitAnswer) {
      return;
    }
    auto ack = pool_message<AConnectAck>();
    ack->imsi = ctx->imsi;
    ack->call_ref = ctx->call_ref;
    send(downlink(*ctx), std::move(ack));
    disarm_procedure_guard(*ctx);
    net().spans().close(SpanKind::kTermination, ctx->imsi.value(),
                        SpanOutcome::kOk, now());
    ++net().metrics().counter(name() + "/mt_calls_connected");
    ctx->step = Step::kActive;
    on_mt_connected(*ctx);
    return;
  }

  if (dynamic_cast<const AConnectAck*>(&msg) != nullptr) {
    return;  // MO answer acknowledgement; nothing to do
  }
  if (dynamic_cast<const AAssignmentComplete*>(&msg) != nullptr) {
    return;  // TCH in place
  }

  if (const auto* disc = dynamic_cast<const ADisconnect*>(&msg)) {
    MsContext* ctx = context(disc->imsi);
    if (ctx == nullptr || ctx->proc == Proc::kNone) {
      // No call state — either already cleared or this MSC restarted and
      // lost it.  Answer the clearing anyway so the MS's release completes
      // instead of retrying into silence.
      auto rel = pool_message<ARelease>();
      rel->imsi = disc->imsi;
      rel->call_ref = disc->call_ref;
      send(env.from, std::move(rel));
      return;
    }
    if (ctx->step == Step::kReleasingMs || ctx->step == Step::kReleasingNet ||
        ctx->step == Step::kClearing) {
      return;  // duplicate (retransmitted) disconnect; clearing already runs
    }
    if (ctx->proc == Proc::kMtCall && ctx->step != Step::kActive) {
      // The far end abandoned while we were still delivering the call.
      net().spans().close(SpanKind::kTermination, ctx->imsi.value(),
                          SpanOutcome::kRejected, now());
    }
    arm_procedure_guard(*ctx);
    ctx->step = Step::kReleasingMs;
    on_ms_disconnect(*ctx, disc->cause);
    return;
  }

  if (const auto* rel = dynamic_cast<const ARelease*>(&msg)) {
    MsContext* ctx = context(rel->imsi);
    if (ctx == nullptr || ctx->step != Step::kReleasingNet) return;
    auto done = pool_message<AReleaseComplete>();
    done->imsi = ctx->imsi;
    done->call_ref = ctx->call_ref;
    send(downlink(*ctx), std::move(done));
    clear_radio(*ctx);
    return;
  }

  if (const auto* done = dynamic_cast<const AReleaseComplete*>(&msg)) {
    MsContext* ctx = context(done->imsi);
    if (ctx == nullptr || ctx->step != Step::kReleasingMs) return;
    clear_radio(*ctx);
    return;
  }

  if (const auto* done = dynamic_cast<const AClearComplete*>(&msg)) {
    MsContext* ctx = context(done->imsi);
    if (ctx == nullptr) return;
    if (ctx->step != Step::kClearing) {
      return;  // clearing of pre-handoff radio resources; call still active
    }
    disarm_procedure_guard(*ctx);
    call_index_.erase(ctx->call_ref);
    MsContext snapshot = *ctx;
    ctx->proc = Proc::kNone;
    ctx->step = Step::kNone;
    ctx->call_ref = CallRef{};
    ctx->handed_off = false;
    on_call_cleared(snapshot);
    return;
  }

  if (const auto* vf = dynamic_cast<const AVoiceFrame*>(&msg)) {
    MsContext* ctx = context(vf->imsi);
    if (ctx != nullptr) on_uplink_voice(*ctx, *vf);
    return;
  }
  if (const auto* vf = dynamic_cast<const ETrunkVoice*>(&msg)) {
    MsContext* ctx = context(vf->imsi);
    if (ctx != nullptr) on_uplink_voice(*ctx, *vf);
    return;
  }

  VG_WARN("msc", name() << ": unhandled " << msg.name());
}

// --- target-MSC relay for handed-in contexts -----------------------------------

namespace {
/// Extracts the IMSI from any GSM payload-bearing message we relay.
template <typename... Ts>
struct ImsiExtractor;

template <typename T, typename... Rest>
struct ImsiExtractor<T, Rest...> {
  static const Imsi* get(const Message& msg) {
    if (const auto* m = dynamic_cast<const T*>(&msg)) return &m->imsi;
    return ImsiExtractor<Rest...>::get(msg);
  }
};

template <>
struct ImsiExtractor<> {
  static const Imsi* get(const Message&) { return nullptr; }
};

const Imsi* relayable_imsi(const Message& msg) {
  return ImsiExtractor<ADisconnect, ARelease, AReleaseComplete, AClearCommand,
                       AClearComplete, AAlerting, AConnect,
                       AConnectAck>::get(msg);
}
}  // namespace

void MscBase::on_message(const Envelope& env) {
  if (handle_handover(env)) return;

  // Target-MSC role after inter-system handoff: relay call control and
  // voice between the anchor MSC and our BSS.
  if (const auto* imsi = relayable_imsi(*env.msg)) {
    MsContext* ctx = context(*imsi);
    if (ctx != nullptr && ctx->handed_in) {
      if (env.from == ctx->remote_msc) {
        send(ctx->bsc, MessagePtr(env.msg->clone()));
      } else {
        send(ctx->remote_msc, MessagePtr(env.msg->clone()));
      }
      return;
    }
  }
  if (const auto* vf = dynamic_cast<const AVoiceFrame*>(env.msg.get())) {
    MsContext* ctx = context(vf->imsi);
    if (ctx != nullptr && ctx->handed_in) {
      auto out = pool_message<ETrunkVoice>();
      static_cast<VoiceFrameInfo&>(*out) = *vf;
      send(ctx->remote_msc, std::move(out));
      return;
    }
  }
  if (const auto* vf = dynamic_cast<const ETrunkVoice*>(env.msg.get())) {
    MsContext* ctx = context(vf->imsi);
    if (ctx != nullptr && ctx->handed_in) {
      auto out = pool_message<AVoiceFrame>();
      static_cast<VoiceFrameInfo&>(*out) = *vf;
      send(ctx->bsc, std::move(out));
      return;
    }
  }

  if (handle_map_message(env)) return;
  if (on_unhandled(env)) return;
  handle_a_message(env);
}

}  // namespace vgprs
