#include "gsm/vlr.hpp"

#include <stdexcept>

#include "common/log.hpp"

namespace vgprs {

const Vlr::VisitorRecord* Vlr::visitor(Imsi imsi) const {
  return records_.find(imsi);
}

NodeId Vlr::hlr() const {
  Node* n = net().node_by_name(config_.hlr_name);
  if (n == nullptr) throw std::logic_error(name() + ": no HLR");
  return n->id();
}

void Vlr::reply_auth_info(NodeId to, Imsi imsi) {
  auto& rec = records_[imsi];
  auto ack = pool_message<MapSendAuthInfoAck>();
  ack->imsi = imsi;
  if (!rec.triplets.empty()) {
    ack->triplets.push_back(rec.triplets.front());
    rec.triplets.pop_front();
  }
  send(to, std::move(ack));
}

void Vlr::on_message(const Envelope& env) {
  const Message& msg = *env.msg;

  // (V)MSC asks for an authentication vector.
  if (const auto* req = dynamic_cast<const MapSendAuthInfo*>(&msg)) {
    auto& rec = records_[req->imsi];
    if (!rec.triplets.empty()) {
      reply_auth_info(env.from, req->imsi);
    } else {
      pending_auth_[req->imsi] = env.from;
      auto fwd = pool_message<MapSendAuthInfo>();
      fwd->imsi = req->imsi;
      send(hlr(), std::move(fwd));
    }
    return;
  }

  // HLR returns authentication vectors.
  if (const auto* ack = dynamic_cast<const MapSendAuthInfoAck*>(&msg)) {
    auto& rec = records_[ack->imsi];
    for (const auto& t : ack->triplets) rec.triplets.push_back(t);
    if (const NodeId* req = pending_auth_.find(ack->imsi); req != nullptr) {
      NodeId requester = *req;
      pending_auth_.erase(ack->imsi);
      reply_auth_info(requester, ack->imsi);
    }
    return;
  }

  // (V)MSC registers the subscriber in this VLR's area.
  if (const auto* ula = dynamic_cast<const MapUpdateLocationArea*>(&msg)) {
    auto& rec = records_[ula->imsi];
    rec.lai = ula->lai;
    rec.msc_name = ula->msc_name;
    pending_ula_[ula->imsi] = env.from;
    auto ul = pool_message<MapUpdateLocation>();
    ul->imsi = ula->imsi;
    ul->vlr_name = name();
    ul->msc_name = ula->msc_name;
    send(hlr(), std::move(ul));
    return;
  }

  // HLR pushes the subscription profile during location updating.
  if (const auto* isd = dynamic_cast<const MapInsertSubsData*>(&msg)) {
    auto& rec = records_[isd->imsi];
    rec.profile = isd->profile;
    rec.profile_valid = true;
    auto ack = pool_message<MapInsertSubsDataAck>();
    ack->imsi = isd->imsi;
    send(env.from, std::move(ack));
    return;
  }

  if (const auto* ul_ack = dynamic_cast<const MapUpdateLocationAck*>(&msg)) {
    const NodeId* pending = pending_ula_.find(ul_ack->imsi);
    if (pending == nullptr) return;
    NodeId requester = *pending;
    pending_ula_.erase(ul_ack->imsi);
    auto& rec = records_[ul_ack->imsi];
    auto ack = pool_message<MapUpdateLocationAreaAck>();
    ack->imsi = ul_ack->imsi;
    ack->success = ul_ack->success;
    ack->cause = ul_ack->cause;
    if (ul_ack->success) {
      rec.registered = true;
      rec.tmsi = Tmsi(next_tmsi_++);
      ack->new_tmsi = rec.tmsi;
      if (rec.profile_valid) ack->msisdn = rec.profile.msisdn;
    }
    send(requester, std::move(ack));
    return;
  }

  // Outgoing-call authorization (paper step 2.2).
  if (const auto* ocall =
          dynamic_cast<const MapSendInfoForOutgoingCall*>(&msg)) {
    auto ack = pool_message<MapSendInfoForOutgoingCallAck>();
    ack->imsi = ocall->imsi;
    const VisitorRecord* rec = records_.find(ocall->imsi);
    if (rec == nullptr || !rec->registered || !rec->profile_valid) {
      ack->success = false;
      ack->cause = 1;  // unidentified subscriber
    } else if (config_.country_code != 0 &&
               ocall->called.country_code() != config_.country_code &&
               !rec->profile.international_calls_allowed) {
      ack->success = false;
      ack->cause = 2;  // international calls barred
    } else {
      ack->success = true;
    }
    send(env.from, std::move(ack));
    return;
  }

  // HLR requests a roaming number for call delivery.
  if (const auto* prn = dynamic_cast<const MapProvideRoamingNumber*>(&msg)) {
    // MSRNs: <prefix> followed by a 5-digit rolling counter.
    Msrn msrn(config_.msrn_prefix * 100'000 + next_msrn_++);
    msrn_map_[msrn] = prn->imsi;
    auto ack = pool_message<MapProvideRoamingNumberAck>();
    ack->imsi = prn->imsi;
    ack->msrn = msrn;
    send(env.from, std::move(ack));
    return;
  }

  // Serving MSC resolves an MSRN from an incoming IAM.
  if (const auto* icall =
          dynamic_cast<const MapSendInfoForIncomingCall*>(&msg)) {
    auto ack = pool_message<MapSendInfoForIncomingCallAck>();
    ack->msrn = icall->msrn;
    if (const Imsi* imsi = msrn_map_.find(icall->msrn); imsi != nullptr) {
      ack->imsi = *imsi;
      ack->found = true;
      const VisitorRecord* rec = records_.find(*imsi);
      if (rec != nullptr && rec->profile_valid) {
        ack->msisdn = rec->profile.msisdn;
      }
      msrn_map_.erase(icall->msrn);  // MSRNs are single-use
    }
    send(env.from, std::move(ack));
    return;
  }

  if (const auto* cancel = dynamic_cast<const MapCancelLocation*>(&msg)) {
    // Propagate the cancellation to the serving (V)MSC so it can purge its
    // MS table (and, for a VMSC, detach from GPRS and unregister at the
    // gatekeeper).
    const VisitorRecord* rec = records_.find(cancel->imsi);
    if (rec != nullptr && !rec->msc_name.empty()) {
      if (Node* msc = net().node_by_name(rec->msc_name)) {
        auto fwd = pool_message<MapCancelLocation>();
        fwd->imsi = cancel->imsi;
        send(msc->id(), std::move(fwd));
      }
    }
    records_.erase(cancel->imsi);
    auto ack = pool_message<MapCancelLocationAck>();
    ack->imsi = cancel->imsi;
    send(env.from, std::move(ack));
    return;
  }

  VG_WARN("vlr", name() << ": unhandled " << msg.name());
}

}  // namespace vgprs
