// MobileStation: a *standard* GSM handset.  This is the crux of the paper:
// vGPRS serves unmodified MSs, so this class implements only GSM 04.08
// mobility management and call control — no vocoder-over-IP, no H.323
// terminal capability.  The identical class is used against the classic
// GSM MSC and against the vGPRS VMSC, which demonstrates the "no handset
// modification" claim by construction.
#pragma once

#include <functional>
#include <string>
#include <unordered_map>

#include "gsm/auth.hpp"
#include "gsm/messages.hpp"
#include "sim/network.hpp"
#include "sim/stats.hpp"

namespace vgprs {

class MobileStation final : public Node {
 public:
  struct Config {
    Imsi imsi;
    Msisdn msisdn;
    std::uint64_t ki = 0;        // SIM secret key
    std::string bts_name;        // serving cell
    bool auto_answer = true;
    SimDuration answer_delay = SimDuration::millis(800);
    /// Procedure supervision: if a procedure stalls for `retry_interval`,
    /// the last procedure message is retransmitted (modeling LAPDm / RR
    /// retries); after `max_retries` retransmissions the procedure fails.
    SimDuration retry_interval = SimDuration::seconds(4);
    std::uint8_t max_retries = 3;
  };

  enum class State {
    kDetached,
    kRegistering,
    kIdle,
    kMoChannel,    // waiting for SDCCH (originating)
    kMoService,    // CM service request sent
    kMoSetup,      // Setup sent, waiting for progress
    kMoRinging,    // heard ringback (Alerting received)
    kMtChannel,    // waiting for SDCCH (page response)
    kMtPaged,      // paging response sent, waiting for Setup
    kMtRinging,    // ringing locally
    kConnected,
    kReleasing,
  };

  MobileStation(std::string name, Config config)
      : Node(std::move(name)), config_(std::move(config)) {}

  // --- subscriber API (what a user does with the phone) --------------------
  void power_on();
  /// IMSI detach: tells the network this MS is gone, then powers down.
  void power_off();
  /// Moves the MS to another cell.  When idle, this triggers the standard
  /// location-update-on-movement registration the paper mentions in
  /// Section 3 ("The registration procedure for MS movement is similar").
  void move_to(const std::string& bts_name);
  void dial(Msisdn called);
  void answer();
  void hangup();

  /// Starts emitting uplink TCH voice frames every `interval` while the call
  /// lasts (at most `count` frames).  Received downlink frames accumulate in
  /// voice_latency().
  void start_voice(std::uint32_t count,
                   SimDuration interval = SimDuration::millis(20));

  /// Declares a neighbour cell the MS may be handed over to.
  void add_neighbor_bts(CellId cell, std::string bts_name);

  // --- introspection --------------------------------------------------------
  [[nodiscard]] State state() const { return state_; }
  [[nodiscard]] const Config& config() const { return config_; }
  [[nodiscard]] Tmsi tmsi() const { return tmsi_; }
  [[nodiscard]] CallRef call_ref() const { return call_ref_; }
  [[nodiscard]] const Histogram& voice_latency() const {
    return voice_latency_;
  }
  [[nodiscard]] std::uint32_t voice_frames_received() const {
    return voice_rx_;
  }

  // --- event hooks -----------------------------------------------------------
  std::function<void()> on_registered;
  std::function<void(CallRef)> on_ringback;   // MO: far end is ringing
  std::function<void(CallRef, Msisdn)> on_incoming;
  std::function<void(CallRef)> on_connected;
  std::function<void(CallRef)> on_released;
  std::function<void(std::string)> on_failure;

  void on_message(const Envelope& env) override;
  void on_timer(TimerId id, std::uint64_t cookie) override;

 private:
  enum class TimerKind : std::uint8_t { kAnswer = 1, kGuard = 2, kVoice = 3 };

  void enter(State s);
  /// Arms procedure supervision and remembers `msg` for retransmission.
  void start_step(MessagePtr msg);
  void arm_guard();
  [[nodiscard]] NodeId bts() const;
  [[nodiscard]] NodeId bts_by_name(const std::string& name) const;
  void fail(const std::string& reason);
  void send_voice_frame();
  /// Closes the span implied by the current procedure state (registration /
  /// origination / release) when the procedure dies without its normal
  /// closing message.  No-op for states whose span another node owns.
  void close_state_span(SpanOutcome outcome);

  Config config_;
  State state_ = State::kDetached;
  std::string serving_bts_;  // may change at handover
  Tmsi tmsi_;
  CallRef call_ref_;
  Msisdn pending_called_;
  std::uint32_t call_seq_ = 0;
  std::uint64_t epoch_ = 0;  // invalidates stale timers on state change
  MessagePtr last_proc_msg_;  // retransmitted if the procedure stalls
  std::uint8_t retries_left_ = 0;

  std::unordered_map<CellId, std::string> neighbor_bts_;

  // voice traffic state
  std::uint32_t voice_remaining_ = 0;
  std::uint32_t voice_seq_ = 0;
  std::uint32_t voice_rx_ = 0;
  SimDuration voice_interval_ = SimDuration::millis(20);
  Histogram voice_latency_;
};

[[nodiscard]] constexpr const char* to_string(MobileStation::State s) {
  switch (s) {
    case MobileStation::State::kDetached: return "detached";
    case MobileStation::State::kRegistering: return "registering";
    case MobileStation::State::kIdle: return "idle";
    case MobileStation::State::kMoChannel: return "mo-channel";
    case MobileStation::State::kMoService: return "mo-service";
    case MobileStation::State::kMoSetup: return "mo-setup";
    case MobileStation::State::kMoRinging: return "mo-ringing";
    case MobileStation::State::kMtChannel: return "mt-channel";
    case MobileStation::State::kMtPaged: return "mt-paged";
    case MobileStation::State::kMtRinging: return "mt-ringing";
    case MobileStation::State::kConnected: return "connected";
    case MobileStation::State::kReleasing: return "releasing";
  }
  return "?";
}

}  // namespace vgprs
