// Home Location Register: the permanent subscriber database, including the
// AuC function (triplet generation from Ki) and call-delivery routing
// (MAP_Send_Routing_Information -> Provide_Roaming_Number, the query chain
// behind the Fig. 7 tromboning scenario).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_set>

#include "gsm/messages.hpp"
#include "sim/network.hpp"
#include "sim/subscriber_pool.hpp"

namespace vgprs {

class Hlr final : public Node {
 public:
  struct SubscriberRecord {
    std::uint64_t ki = 0;
    SubscriberProfile profile;
    std::string vlr_name;   // current serving VLR ("" = not registered)
    std::string msc_name;   // current serving (V)MSC
    std::string sgsn_name;  // current serving SGSN (GPRS attach)
  };

  explicit Hlr(std::string name) : Node(std::move(name)) {}

  /// Creates the permanent subscription (operator provisioning).
  void provision(Imsi imsi, std::uint64_t ki, SubscriberProfile profile);

  /// IMSI confidentiality (the paper's Section 6 business-model argument):
  /// when enabled, MAP interrogations that would reveal subscriber data
  /// (SRI, GPRS routing info) are only answered for explicitly trusted
  /// peers — the operator's own GMSCs and support nodes.  A foreign H.323
  /// gatekeeper (as 3G TR 23.821 requires) is refused.
  void set_imsi_confidentiality(bool on) { imsi_confidentiality_ = on; }
  void trust_map_peer(const std::string& node_name) {
    trusted_peers_.insert(node_name);
  }
  [[nodiscard]] std::uint64_t refused_interrogations() const {
    return refused_interrogations_;
  }

  [[nodiscard]] const SubscriberRecord* record(Imsi imsi) const;
  [[nodiscard]] std::optional<Imsi> imsi_of(Msisdn msisdn) const;

  void on_message(const Envelope& env) override;

 private:
  struct PendingUpdate {
    NodeId requester;
    Imsi imsi;
  };
  struct PendingSri {
    NodeId requester;
    Msisdn msisdn;
  };

  SubscriberTable<Imsi, SubscriberRecord> records_;
  SubscriberTable<Msisdn, Imsi> by_msisdn_;
  [[nodiscard]] bool interrogation_allowed(NodeId requester);

  SubscriberTable<Imsi, PendingUpdate> pending_updates_;
  SubscriberTable<Imsi, PendingSri> pending_sri_;
  bool imsi_confidentiality_ = false;
  std::unordered_set<std::string> trusted_peers_;
  std::uint64_t refused_interrogations_ = 0;
};

}  // namespace vgprs
