// Base Station Controller: manages the radio channels of its BTSs and
// relays signaling between Abis and the A interface toward its (V)MSC.
// In GPRS deployments the BSC hosts the Packet Control Unit (PCU), which
// forwards packet-switched traffic to the SGSN; circuit-switched signaling
// and voice go to the MSC.  A BSC connects to exactly one SGSN (GSM 03.60).
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>

#include "gsm/messages.hpp"
#include "sim/network.hpp"

namespace vgprs {

class Bts;

class Bsc final : public Node {
 public:
  struct Config {
    std::string msc_name;          // serving (V)MSC
    std::uint16_t sdcch_channels = 64;  // signaling channel pool
    std::uint16_t tch_channels = 64;    // traffic channel pool
  };

  Bsc(std::string name, Config config)
      : Node(std::move(name)), config_(std::move(config)) {}

  /// Declares that `bts` (serving `cell`) is parented to this BSC.  The
  /// scenario builder must also create the Abis link.
  void adopt_bts(const Bts& bts);
  void adopt_bts(NodeId bts, CellId cell);

  /// Radio-measurement trigger: reports to the MSC that `imsi`'s call must
  /// be handed over to `target_cell` (A_Handover_Required).  In a real BSS
  /// this fires from measurement reports; tests and benches drive it.
  void initiate_handover(Imsi imsi, CallRef call_ref, CellId target_cell);

  [[nodiscard]] std::uint16_t sdcch_in_use() const { return sdcch_in_use_; }
  [[nodiscard]] std::uint16_t tch_in_use() const { return tch_in_use_; }

  void on_message(const Envelope& env) override;

 private:
  [[nodiscard]] NodeId msc() const;
  [[nodiscard]] NodeId bts_for(const Imsi& imsi) const;
  void note_ms(const Imsi& imsi, NodeId bts) { bts_by_imsi_[imsi] = bts; }

  template <typename From, typename To>
  bool relay(const Envelope& env, NodeId dest) {
    const auto* m = dynamic_cast<const From*>(env.msg.get());
    if (m == nullptr) return false;
    auto out = pool_message<To>();
    static_cast<typename To::payload_type&>(*out) =
        static_cast<const typename From::payload_type&>(*m);
    send(dest, std::move(out));
    return true;
  }

  template <typename From, typename To>
  bool relay_up(const Envelope& env) {
    const auto* m = dynamic_cast<const From*>(env.msg.get());
    if (m == nullptr) return false;
    note_ms(m->imsi, env.from);
    return relay<From, To>(env, msc());
  }

  template <typename From, typename To>
  bool relay_down(const Envelope& env) {
    const auto* m = dynamic_cast<const From*>(env.msg.get());
    if (m == nullptr) return false;
    NodeId bts = bts_for(m->imsi);
    if (!bts.valid()) return true;  // unknown MS: swallow
    return relay<From, To>(env, bts);
  }

  Config config_;
  std::unordered_map<Imsi, NodeId> bts_by_imsi_;
  std::unordered_map<CellId, NodeId> bts_by_cell_;
  std::uint16_t sdcch_in_use_ = 0;
  std::uint16_t tch_in_use_ = 0;
  std::uint16_t next_channel_ = 1;
};

}  // namespace vgprs
