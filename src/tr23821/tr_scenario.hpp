// Scenario builder for the 3G TR 23.821 baseline network: H.323-capable
// GPRS handsets over the packet radio path, a MAP-enabled gatekeeper, and
// the GGSN-driven network-initiated PDP activation for terminating calls.
#pragma once

#include <memory>
#include <vector>

#include "gprs/ggsn.hpp"
#include "gprs/sgsn.hpp"
#include "gsm/hlr.hpp"
#include "h323/terminal.hpp"
#include "tr23821/tr_gatekeeper.hpp"
#include "tr23821/tr_ms.hpp"
#include "vgprs/latency.hpp"

namespace vgprs {

struct TrParams {
  std::uint32_t num_ms = 1;
  std::uint32_t num_terminals = 1;
  /// Radio groupings for the sharded engine: MSs are split round-robin
  /// into this many shards (the TR topology has no BSC/BTS seam — the
  /// packet radio path terminates at the SGSN).
  std::uint32_t num_cells = 1;
  LatencyConfig latency;
  std::uint64_t seed = 1;
  bool deactivate_pdp_when_idle = true;  // the TR resource policy
  std::uint16_t country_code = 88;
  bool sharded = false;  // core / SGSN / per-"cell" MS groups as shards
  unsigned workers = 1;
};

struct TrScenario {
  Network net;
  Hlr* hlr = nullptr;
  Sgsn* sgsn = nullptr;
  Ggsn* ggsn = nullptr;
  IpRouter* router = nullptr;
  TrGatekeeper* gk = nullptr;
  std::vector<TrMobileStation*> ms;
  std::vector<H323Terminal*> terminals;

  explicit TrScenario(std::uint64_t seed) : net(seed) {}

  std::size_t settle() { return net.run_until_idle(); }
};

std::unique_ptr<TrScenario> build_tr23821(const TrParams& params);

}  // namespace vgprs
