#include "tr23821/tr_scenario.hpp"

#include <algorithm>

#include "vgprs/scenario.hpp"

namespace vgprs {

std::unique_ptr<TrScenario> build_tr23821(const TrParams& p) {
  register_all_messages();
  auto s = std::make_unique<TrScenario>(p.seed);
  Network& net = s->net;
  const LatencyConfig& L = p.latency;

  s->hlr = &net.add<Hlr>("HLR");
  s->sgsn = &net.add<Sgsn>("SGSN", Sgsn::Config{"GGSN", "HLR"});
  Ggsn::Config gc;
  gc.router_name = "Router";
  gc.hlr_name = "HLR";
  s->ggsn = &net.add<Ggsn>("GGSN", gc);
  s->router = &net.add<IpRouter>("Router");
  s->gk = &net.add<TrGatekeeper>(
      "GK", IpAddress(192, 168, 1, 1), "Router",
      TrGatekeeper::TrConfig{"HLR", gc.ggsn_address});

  net.connect(*s->sgsn, *s->ggsn, L.link(L.gn, "Gn"));
  net.connect(*s->sgsn, *s->hlr, L.link(L.gr, "Gr"));
  net.connect(*s->ggsn, *s->hlr, L.link(L.gc, "Gc"));
  net.connect(*s->ggsn, *s->router, L.link(L.gi, "Gi"));
  net.connect(*s->gk, *s->router, L.link(L.ip, "IP"));
  // The TR gatekeeper's MAP access to the HLR — the network modification
  // the paper's Section 6 calls out.
  net.connect(*s->gk, *s->hlr, L.link(L.d, "MAP"));

  for (std::uint32_t i = 0; i < p.num_ms; ++i) {
    SubscriberIdentity id = make_subscriber(p.country_code, i + 1);
    IpAddress static_ip(10, 2, 0, static_cast<std::uint8_t>(i + 1));
    SubscriberProfile profile;
    profile.msisdn = id.msisdn;
    profile.static_pdp_address = static_ip;
    s->hlr->provision(id.imsi, id.ki, profile);
    s->ggsn->provision_static(id.imsi, static_ip);

    TrMobileStation::Config mc;
    mc.imsi = id.imsi;
    mc.msisdn = id.msisdn;
    mc.static_pdp_address = static_ip;
    mc.sgsn_name = "SGSN";
    mc.gk_ip = IpAddress(192, 168, 1, 1);
    mc.deactivate_pdp_when_idle = p.deactivate_pdp_when_idle;
    auto& ms = net.add<TrMobileStation>("TR-MS" + std::to_string(i + 1), mc);
    // The packet radio path (Um PS + PCU + Gb): higher latency and
    // queueing jitter than the dedicated circuit-switched channel.
    LinkProfile radio;
    radio.latency = L.um_packet;
    radio.jitter = L.um_packet_jitter;
    radio.label = "Um-PS";
    net.connect(ms, *s->sgsn, radio);
    s->ms.push_back(&ms);
  }

  for (std::uint32_t i = 0; i < p.num_terminals; ++i) {
    H323Terminal::Config tc;
    tc.ip = IpAddress(192, 168, 1, 10 + static_cast<std::uint8_t>(i));
    tc.alias = make_subscriber(p.country_code, 1000 + i).msisdn;
    tc.gk_ip = IpAddress(192, 168, 1, 1);
    tc.router_name = "Router";
    auto& term = net.add<H323Terminal>("TERM" + std::to_string(i + 1), tc);
    net.connect(term, *s->router, L.link(L.ip, "IP"));
    s->terminals.push_back(&term);
  }

  if (p.sharded) {
    // The planner's default core is the max-degree node — here the SGSN,
    // which every MS hangs off directly.  The fixed side (HLR/GGSN/Router/
    // GK/terminals) packs into one bin and the MS leaves are dealt across
    // the rest.  Lookahead = 2 ms (Gn); the MS<->SGSN radio hop is 40 ms.
    const std::uint32_t cells = std::max(1u, p.num_cells);
    net.set_shards(net.plan_shards(cells + 2));
    net.set_workers(p.workers);
  }

  return s;
}

}  // namespace vgprs
