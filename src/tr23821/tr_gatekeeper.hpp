// TrGatekeeper: the 3G TR 23.821 gatekeeper.  Unlike the standard H.323
// gatekeeper vGPRS uses, it must (a) speak GSM MAP to the HLR to map a
// dialled MSISDN onto an IMSI, and (b) ask the GGSN to re-establish the
// callee's PDP context before admitting a call — both of which the paper
// criticises: a modified gatekeeper, longer call setup, and the IMSI
// leaving the GPRS operator's domain.
#pragma once

#include <string>
#include <unordered_map>

#include "gsm/messages.hpp"
#include "h323/gatekeeper.hpp"

namespace vgprs {

class TrGatekeeper final : public Gatekeeper {
 public:
  struct TrConfig {
    std::string hlr_name;  // direct MAP access (the modification)
    IpAddress ggsn_control_ip;
  };

  TrGatekeeper(std::string name, IpAddress ip, std::string router_name,
               TrConfig tr)
      : Gatekeeper(std::move(name), ip, std::move(router_name)),
        tr_(std::move(tr)) {}

  [[nodiscard]] std::uint64_t hlr_queries() const { return hlr_queries_; }
  [[nodiscard]] std::uint64_t ggsn_activations() const {
    return ggsn_activations_;
  }
  /// IMSIs this (H.323-domain) node has learned — each one is a
  /// confidentiality violation by the paper's argument.
  [[nodiscard]] std::uint64_t imsis_learned() const { return imsis_learned_; }

 protected:
  void admit(const RasAdmissionRequestInfo& arq, IpAddress requester,
             const Registration& reg) override;
  void on_other(const Envelope& env) override;
  void on_ip(const IpDatagramInfo& dgram, const Message& inner) override;

 private:
  struct PendingAdmission {
    RasAdmissionRequestInfo arq;
    IpAddress requester;
    TransportAddress dest;
    Imsi imsi;
  };

  TrConfig tr_;
  std::unordered_map<Msisdn, PendingAdmission> pending_by_alias_;
  std::unordered_map<Imsi, Msisdn> alias_by_imsi_;
  std::uint64_t hlr_queries_ = 0;
  std::uint64_t ggsn_activations_ = 0;
  std::uint64_t imsis_learned_ = 0;
};

}  // namespace vgprs
