#include "tr23821/tr_ms.hpp"

#include <stdexcept>

#include "common/log.hpp"

namespace vgprs {

namespace {
constexpr std::uint64_t kAnswerKind = 1;
constexpr std::uint64_t kRingbackKind = 2;
constexpr std::uint64_t kVoiceKind = 3;
constexpr std::uint64_t make_cookie(std::uint64_t kind, std::uint64_t epoch) {
  return (kind << 56) | (epoch & 0x00FFFFFFFFFFFFFFULL);
}

/// Extracts the IMSI (standing in for the TLLI) from any GPRS message the
/// MS can receive on its SGSN link.
template <typename... Ts>
struct ImsiExtractor;

template <typename T, typename... Rest>
struct ImsiExtractor<T, Rest...> {
  static const Imsi* get(const Message& msg) {
    if (const auto* m = dynamic_cast<const T*>(&msg)) return &m->imsi;
    return ImsiExtractor<Rest...>::get(msg);
  }
};

template <>
struct ImsiExtractor<> {
  static const Imsi* get(const Message&) { return nullptr; }
};

const Imsi* gprs_imsi(const Message& msg) {
  return ImsiExtractor<GprsAttachAccept, GprsAttachReject,
                       ActivatePdpContextAccept, ActivatePdpContextReject,
                       DeactivatePdpContextAccept, RequestPdpContextActivation,
                       GbUnitData>::get(msg);
}
}  // namespace

void TrMobileStation::enter(State s) {
  state_ = s;
  ++epoch_;
}

NodeId TrMobileStation::sgsn() const {
  Node* n = net().node_by_name(config_.sgsn_name);
  if (n == nullptr) throw std::logic_error(name() + ": no SGSN");
  return n->id();
}

void TrMobileStation::send_tunneled(IpAddress dst, const Message& inner) {
  auto dgram = make_ip_datagram(pdp_address_, dst, inner);
  auto frame = pool_message<GbUnitData>();
  frame->imsi = config_.imsi;
  frame->payload = dgram->encode();
  send(sgsn(), std::move(frame));
}

void TrMobileStation::activate_pdp() {
  ++pdp_activations_;
  net().spans().open(SpanKind::kPdpActivation, config_.imsi.value(), name(),
                     now());
  auto req = pool_message<ActivatePdpContextRequest>();
  req->imsi = config_.imsi;
  req->nsapi = Nsapi(5);
  req->qos = QosProfile{QosClass::kConversational, 13, 1};
  req->requested_address = config_.static_pdp_address;
  send(sgsn(), std::move(req));
  retx_.arm(
      retx_key(RetxKind::kPdpActivate),
      [this] {
        // Re-emit without re-arming (arm() would restart the backoff).
        if (pdp_active_ || (state_ != State::kActivatingInitial &&
                            state_ != State::kActivatingForCall)) {
          return;
        }
        auto again = pool_message<ActivatePdpContextRequest>();
        again->imsi = config_.imsi;
        again->nsapi = Nsapi(5);
        again->qos = QosProfile{QosClass::kConversational, 13, 1};
        again->requested_address = config_.static_pdp_address;
        send(sgsn(), std::move(again));
      },
      [this] { give_up_pdp_activation(); });
}

void TrMobileStation::give_up_pdp_activation() {
  if (state_ != State::kActivatingInitial &&
      state_ != State::kActivatingForCall &&
      state_ != State::kActivatingForPage) {
    return;
  }
  net().spans().close(SpanKind::kPdpActivation, config_.imsi.value(),
                      SpanOutcome::kTimeout, now());
  pending_setup_ = nullptr;
  if (state_ == State::kActivatingInitial) {
    net().spans().close(SpanKind::kRegistration, config_.imsi.value(),
                        SpanOutcome::kTimeout, now());
  } else if (state_ == State::kActivatingForCall) {
    net().spans().close(SpanKind::kOrigination, config_.imsi.value(),
                        SpanOutcome::kTimeout, now());
  }
  if (on_failure) on_failure("PDP activation timed out");
  enter(attached_ ? State::kIdle : State::kDetached);
  pdp_active_ = false;
}

void TrMobileStation::deactivate_pdp(State next) {
  ++pdp_deactivations_;
  net().spans().open(SpanKind::kPdpDeactivation, config_.imsi.value(), name(),
                     now());
  enter(next);
  auto req = pool_message<DeactivatePdpContextRequest>();
  req->imsi = config_.imsi;
  req->nsapi = Nsapi(5);
  send(sgsn(), std::move(req));
  retx_.arm(
      retx_key(RetxKind::kPdpDeactivate),
      [this] {
        if (state_ != State::kDeactivatingIdle &&
            state_ != State::kDeactivatingAfterCall) {
          return;
        }
        auto again = pool_message<DeactivatePdpContextRequest>();
        again->imsi = config_.imsi;
        again->nsapi = Nsapi(5);
        send(sgsn(), std::move(again));
      },
      [this] {
        if (state_ != State::kDeactivatingIdle &&
            state_ != State::kDeactivatingAfterCall) {
          return;
        }
        // SGSN never confirmed: drop the context locally and move on.
        net().spans().close(SpanKind::kPdpDeactivation, config_.imsi.value(),
                            SpanOutcome::kTimeout, now());
        pdp_active_ = false;
        pdp_address_ = IpAddress{};
        enter(State::kIdle);
      });
}

void TrMobileStation::power_on() {
  if (state_ != State::kDetached) return;
  enter(State::kAttaching);
  // The TR 23.821 "registration" spans the whole Fig. 7 chain: GPRS attach,
  // initial PDP activation, and H.323 RAS registration at the gatekeeper.
  net().spans().open(SpanKind::kRegistration, config_.imsi.value(), name(),
                     now());
  auto attach = pool_message<GprsAttachRequest>();
  attach->imsi = config_.imsi;
  send(sgsn(), std::move(attach));
  retx_.arm(
      retx_key(RetxKind::kAttach),
      [this] {
        if (state_ != State::kAttaching) return;
        auto again = pool_message<GprsAttachRequest>();
        again->imsi = config_.imsi;
        send(sgsn(), std::move(again));
      },
      [this] {
        if (state_ != State::kAttaching) return;
        net().spans().close(SpanKind::kRegistration, config_.imsi.value(),
                            SpanOutcome::kTimeout, now());
        enter(State::kDetached);
        if (on_failure) on_failure("GPRS attach timed out");
      });
}

void TrMobileStation::dial(Msisdn called) {
  if (state_ != State::kIdle) {
    if (on_failure) on_failure("dial while busy");
    return;
  }
  peer_number_ = called;
  call_ref_ = CallRef((static_cast<std::uint32_t>(config_.imsi.value()) &
                       0xFFFFu) << 12 | ++call_seq_);
  net().spans().open(SpanKind::kOrigination, config_.imsi.value(), name(),
                     now());
  if (!pdp_active_) {
    // TR 23.821: the context was deactivated while idle and must be
    // rebuilt before any call signaling can flow.
    enter(State::kActivatingForCall);
    activate_pdp();
    return;
  }
  enter(State::kArqSent);
  send_arq();
}

void TrMobileStation::send_arq() {
  auto arq = pool_message<RasArq>();
  arq->endpoint_id = endpoint_id_;
  arq->call_ref = call_ref_;
  arq->calling = config_.msisdn;
  arq->called = peer_number_;
  send_tunneled(config_.gk_ip, *arq);
  retx_.arm(
      retx_key(RetxKind::kArq),
      [this] {
        // Re-emit without re-arming (arm() would restart the backoff).
        if (state_ != State::kArqSent) return;
        auto again = pool_message<RasArq>();
        again->endpoint_id = endpoint_id_;
        again->call_ref = call_ref_;
        again->calling = config_.msisdn;
        again->called = peer_number_;
        send_tunneled(config_.gk_ip, *again);
      },
      [this] {
        if (state_ != State::kArqSent) return;
        if (on_failure) on_failure("admission timed out");
        release_call(false, 102);
      });
}

void TrMobileStation::answer() {
  if (state_ != State::kRinging) return;
  net().spans().close(SpanKind::kTermination, config_.imsi.value(),
                      SpanOutcome::kOk, now());
  auto conn = pool_message<Q931Connect>();
  conn->call_ref = call_ref_;
  conn->media_address = TransportAddress(pdp_address_, config_.media_port);
  send_tunneled(remote_signal_, *conn);
  enter(State::kConnected);
  if (on_connected) on_connected(call_ref_);
  if (voice_remaining_ > 0) send_voice_frame();
}

void TrMobileStation::hangup() {
  if (state_ != State::kConnected && state_ != State::kRingback &&
      state_ != State::kCalling && state_ != State::kRinging) {
    return;
  }
  release_call(true, 16);
}

void TrMobileStation::release_call(bool notify_far_end, std::uint8_t cause) {
  // Whatever call-scoped request was outstanding is moot now.
  retx_.ack(retx_key(RetxKind::kArq));
  retx_.ack(retx_key(RetxKind::kSetup));
  if (state_ == State::kArqSent || state_ == State::kCalling ||
      state_ == State::kRingback) {
    // Our own setup ended before the far end answered.
    net().spans().close(SpanKind::kOrigination, config_.imsi.value(),
                        SpanOutcome::kRejected, now());
  } else if (state_ == State::kIncomingArq || state_ == State::kRinging) {
    // An incoming call collapsed before we answered it.
    net().spans().close(SpanKind::kTermination, config_.imsi.value(),
                        SpanOutcome::kRejected, now());
  }
  if (notify_far_end && remote_signal_.valid()) {
    auto rel = pool_message<Q931ReleaseComplete>();
    rel->call_ref = call_ref_;
    rel->cause = cause;
    send_tunneled(remote_signal_, *rel);
  }
  auto drq = pool_message<RasDrq>();
  drq->endpoint_id = endpoint_id_;
  drq->call_ref = call_ref_;
  send_tunneled(config_.gk_ip, *drq);
  CallRef drq_ref = call_ref_;
  retx_.arm(
      retx_key(RetxKind::kDrq),
      [this, drq_ref] {
        if (!pdp_active_) return;
        auto again = pool_message<RasDrq>();
        again->endpoint_id = endpoint_id_;
        again->call_ref = drq_ref;
        send_tunneled(config_.gk_ip, *again);
      },
      [this] {
        // GK never confirmed the disengage: run the deferred teardown
        // anyway so the handset is not parked in kAwaitDcf forever.
        if (state_ == State::kAwaitDcf) {
          deactivate_pdp(State::kDeactivatingAfterCall);
        }
      });
  remote_signal_ = IpAddress{};
  remote_media_ = IpAddress{};
  CallRef released = call_ref_;
  if (config_.deactivate_pdp_when_idle) {
    // Deactivate only after the DCF confirms the disengage: tearing the
    // context down immediately could outrun the release signaling still in
    // flight on the (jittery) packet radio path.
    enter(State::kAwaitDcf);
  } else {
    enter(State::kIdle);
  }
  if (on_released) on_released(released);
}

void TrMobileStation::start_voice(std::uint32_t count, SimDuration interval) {
  voice_remaining_ = count;
  voice_interval_ = interval;
  if (state_ == State::kConnected) send_voice_frame();
}

void TrMobileStation::send_voice_frame() {
  if (voice_remaining_ == 0 || state_ != State::kConnected ||
      !remote_media_.valid()) {
    return;
  }
  --voice_remaining_;
  auto rtp = pool_message<RtpPacket>();
  rtp->ssrc = endpoint_id_;
  rtp->seq = ++voice_seq_;
  rtp->timestamp = voice_seq_ * 160;
  rtp->origin_us = now().count_micros();
  send_tunneled(remote_media_, *rtp);
  if (voice_remaining_ > 0) {
    set_timer(voice_interval_, make_cookie(kVoiceKind, epoch_));
  }
}

void TrMobileStation::on_timer(TimerId, std::uint64_t cookie) {
  if (retx_.on_timer(cookie)) return;
  std::uint64_t kind = cookie >> 56;
  std::uint64_t epoch = cookie & 0x00FFFFFFFFFFFFFFULL;
  if (epoch != epoch_) return;
  if (kind == kAnswerKind && state_ == State::kRinging) answer();
  if (kind == kRingbackKind && state_ == State::kRingback) {
    // release_call closes the origination span for us (kRingback branch).
    if (on_failure) on_failure("ringback timed out");
    release_call(true, 102);
  }
  if (kind == kVoiceKind) send_voice_frame();
}

void TrMobileStation::on_message(const Envelope& env) {
  const Message& msg = *env.msg;

  // A real MS filters on its own identity: a response echoing someone
  // else's IMSI (e.g. a corrupted-but-decodable request bounced back as a
  // reject for the garbled identity) must not drive our state machine.
  if (const Imsi* imsi = gprs_imsi(msg);
      imsi != nullptr && *imsi != config_.imsi) {
    return;
  }

  if (const auto* acc = dynamic_cast<const GprsAttachAccept*>(&msg)) {
    (void)acc;
    retx_.ack(retx_key(RetxKind::kAttach));
    if (state_ != State::kAttaching) return;
    attached_ = true;
    enter(State::kActivatingInitial);
    activate_pdp();
    return;
  }
  if (dynamic_cast<const GprsAttachReject*>(&msg) != nullptr) {
    retx_.ack(retx_key(RetxKind::kAttach));
    if (state_ != State::kAttaching) return;
    net().spans().close(SpanKind::kRegistration, config_.imsi.value(),
                        SpanOutcome::kRejected, now());
    enter(State::kDetached);
    if (on_failure) on_failure("GPRS attach rejected");
    return;
  }

  if (const auto* acc = dynamic_cast<const ActivatePdpContextAccept*>(&msg)) {
    retx_.ack(retx_key(RetxKind::kPdpActivate));
    if (state_ != State::kActivatingInitial &&
        state_ != State::kActivatingForCall &&
        state_ != State::kActivatingForPage) {
      return;  // duplicate accept after the span already closed
    }
    net().spans().close(SpanKind::kPdpActivation, config_.imsi.value(),
                        SpanOutcome::kOk, now());
    pdp_active_ = true;
    pdp_address_ = acc->address;
    if (state_ == State::kActivatingInitial) {
      enter(State::kRasRegistering);
      auto rrq = pool_message<RasRrq>();
      rrq->call_signal_address =
          TransportAddress(pdp_address_, config_.signal_port);
      rrq->alias = config_.msisdn;
      send_tunneled(config_.gk_ip, *rrq);
      retx_.arm(
          retx_key(RetxKind::kRrq),
          [this] {
            if (state_ != State::kRasRegistering) return;
            auto again = pool_message<RasRrq>();
            again->call_signal_address =
                TransportAddress(pdp_address_, config_.signal_port);
            again->alias = config_.msisdn;
            send_tunneled(config_.gk_ip, *again);
          },
          [this] {
            if (state_ != State::kRasRegistering) return;
            net().spans().close(SpanKind::kRegistration, config_.imsi.value(),
                                SpanOutcome::kTimeout, now());
            if (on_failure) on_failure("RAS registration timed out");
            if (config_.deactivate_pdp_when_idle) {
              deactivate_pdp(State::kDeactivatingIdle);
            } else {
              enter(State::kIdle);
            }
          });
      return;
    }
    if (state_ == State::kActivatingForCall) {
      enter(State::kArqSent);
      send_arq();
      return;
    }
    if (state_ == State::kActivatingForPage) {
      // Routing path re-established; the caller's Setup will now reach us
      // (or already did and was held).
      enter(State::kIdle);
      if (pending_setup_ != nullptr) {
        auto held = std::move(pending_setup_);
        pending_setup_ = nullptr;
        handle_tunneled(*held);
      }
      return;
    }
    return;
  }
  if (dynamic_cast<const ActivatePdpContextReject*>(&msg) != nullptr) {
    retx_.ack(retx_key(RetxKind::kPdpActivate));
    if (state_ != State::kActivatingInitial &&
        state_ != State::kActivatingForCall &&
        state_ != State::kActivatingForPage) {
      return;
    }
    net().spans().close(SpanKind::kPdpActivation, config_.imsi.value(),
                        SpanOutcome::kRejected, now());
    pending_setup_ = nullptr;  // the held caller's Setup cannot be serviced
    if (state_ == State::kActivatingInitial) {
      net().spans().close(SpanKind::kRegistration, config_.imsi.value(),
                          SpanOutcome::kRejected, now());
    } else if (state_ == State::kActivatingForCall) {
      net().spans().close(SpanKind::kOrigination, config_.imsi.value(),
                          SpanOutcome::kRejected, now());
    }
    if (on_failure) on_failure("PDP activation rejected");
    enter(attached_ ? State::kIdle : State::kDetached);
    pdp_active_ = false;
    return;
  }
  if (dynamic_cast<const DeactivatePdpContextAccept*>(&msg) != nullptr) {
    retx_.ack(retx_key(RetxKind::kPdpDeactivate));
    if (state_ != State::kDeactivatingIdle &&
        state_ != State::kDeactivatingAfterCall) {
      return;
    }
    net().spans().close(SpanKind::kPdpDeactivation, config_.imsi.value(),
                        SpanOutcome::kOk, now());
    pdp_active_ = false;
    pdp_address_ = IpAddress{};
    if (state_ == State::kDeactivatingIdle ||
        state_ == State::kDeactivatingAfterCall) {
      enter(State::kIdle);
    }
    return;
  }

  if (const auto* req =
          dynamic_cast<const RequestPdpContextActivation*>(&msg)) {
    // Network-initiated activation for a terminating call (3G TR 23.821).
    if (state_ != State::kIdle || pdp_active_) return;
    enter(State::kActivatingForPage);
    ++pdp_activations_;
    net().spans().open(SpanKind::kPdpActivation, config_.imsi.value(), name(),
                       now());
    auto act = pool_message<ActivatePdpContextRequest>();
    act->imsi = config_.imsi;
    act->nsapi = req->nsapi;
    act->qos = QosProfile{QosClass::kConversational, 13, 1};
    act->requested_address = req->address;
    send(sgsn(), std::move(act));
    Nsapi page_nsapi = req->nsapi;
    IpAddress page_address = req->address;
    retx_.arm(
        retx_key(RetxKind::kPdpActivate),
        [this, page_nsapi, page_address] {
          if (pdp_active_ || state_ != State::kActivatingForPage) return;
          auto again = pool_message<ActivatePdpContextRequest>();
          again->imsi = config_.imsi;
          again->nsapi = page_nsapi;
          again->qos = QosProfile{QosClass::kConversational, 13, 1};
          again->requested_address = page_address;
          send(sgsn(), std::move(again));
        },
        [this] { give_up_pdp_activation(); });
    return;
  }

  if (const auto* frame = dynamic_cast<const GbUnitData*>(&msg)) {
    auto decoded = MessageRegistry::instance().decode(frame->payload);
    if (!decoded.ok()) return;
    const auto* dgram =
        dynamic_cast<const IpDatagram*>(decoded.value().get());
    if (dgram == nullptr) return;
    auto inner = ip_payload(*dgram);
    if (!inner.ok()) return;
    handle_tunneled(*inner.value());
    return;
  }

  VG_DEBUG("tr-ms", name() << ": ignoring " << msg.name());
}

void TrMobileStation::handle_tunneled(const Message& inner) {
  if (const auto* rcf = dynamic_cast<const RasRcf*>(&inner)) {
    retx_.ack(retx_key(RetxKind::kRrq));
    if (state_ != State::kRasRegistering) return;
    net().spans().close(SpanKind::kRegistration, config_.imsi.value(),
                        SpanOutcome::kOk, now());
    endpoint_id_ = rcf->endpoint_id;
    // Step 6 of TR 23.821 Fig. 7: deactivate the context once registered.
    if (config_.deactivate_pdp_when_idle) {
      deactivate_pdp(State::kDeactivatingIdle);
    } else {
      enter(State::kIdle);
    }
    if (on_registered) on_registered();
    return;
  }
  if (const auto* acf = dynamic_cast<const RasAcf*>(&inner)) {
    retx_.ack(retx_key(RetxKind::kArq));
    if (state_ == State::kArqSent && acf->call_ref == call_ref_) {
      remote_signal_ = acf->dest_call_signal_address.ip();
      enter(State::kCalling);
      auto setup = pool_message<Q931Setup>();
      setup->call_ref = call_ref_;
      setup->calling = config_.msisdn;
      setup->called = peer_number_;
      setup->src_signal_address =
          TransportAddress(pdp_address_, config_.signal_port);
      setup->media_address =
          TransportAddress(pdp_address_, config_.media_port);
      send_tunneled(remote_signal_, *setup);
      retx_.arm(
          retx_key(RetxKind::kSetup),
          [this] {
            if (state_ != State::kCalling) return;
            auto again = pool_message<Q931Setup>();
            again->call_ref = call_ref_;
            again->calling = config_.msisdn;
            again->called = peer_number_;
            again->src_signal_address =
                TransportAddress(pdp_address_, config_.signal_port);
            again->media_address =
                TransportAddress(pdp_address_, config_.media_port);
            send_tunneled(remote_signal_, *again);
          },
          [this] {
            if (state_ != State::kCalling) return;
            if (on_failure) on_failure("Setup timed out");
            release_call(true, 102);
          });
      return;
    }
    if (state_ == State::kIncomingArq && acf->call_ref == call_ref_) {
      enter(State::kRinging);
      auto alert = pool_message<Q931Alerting>();
      alert->call_ref = call_ref_;
      send_tunneled(remote_signal_, *alert);
      if (on_incoming) on_incoming(call_ref_, peer_number_);
      if (config_.auto_answer) {
        set_timer(config_.answer_delay, make_cookie(kAnswerKind, epoch_));
      }
      return;
    }
    return;
  }
  if (const auto* arj = dynamic_cast<const RasArj*>(&inner)) {
    retx_.ack(retx_key(RetxKind::kArq));
    if (arj->call_ref != call_ref_) return;
    if (state_ == State::kArqSent || state_ == State::kIncomingArq) {
      if (on_failure) {
        on_failure("admission rejected, cause " + std::to_string(arj->cause));
      }
      release_call(state_ == State::kIncomingArq, 47);
    }
    return;
  }
  if (dynamic_cast<const RasDcf*>(&inner) != nullptr) {
    retx_.ack(retx_key(RetxKind::kDrq));
    if (state_ == State::kAwaitDcf) {
      deactivate_pdp(State::kDeactivatingAfterCall);
    }
    return;
  }

  if (const auto* setup = dynamic_cast<const Q931Setup*>(&inner)) {
    if (state_ == State::kActivatingForPage ||
        (state_ == State::kIdle && !pdp_active_)) {
      // The network paged us for this call; the caller's Setup overtook our
      // activation accept on the jittery Gb path.  Hold it until the
      // context is up rather than bouncing the call as busy.
      pending_setup_ = pool_message<Q931Setup>(*setup);
      return;
    }
    if (setup->call_ref == call_ref_ && state_ != State::kIdle &&
        state_ != State::kDetached &&
        setup->src_signal_address.ip() == remote_signal_) {
      // Duplicate Setup for the call we are already handling: re-confirm
      // rather than busy-releasing our own call.
      auto proceed = pool_message<Q931CallProceeding>();
      proceed->call_ref = call_ref_;
      send_tunneled(remote_signal_, *proceed);
      return;
    }
    if (state_ != State::kIdle || !pdp_active_) {
      auto rel = pool_message<Q931ReleaseComplete>();
      rel->call_ref = setup->call_ref;
      rel->cause = 17;
      send_tunneled(setup->src_signal_address.ip(), *rel);
      return;
    }
    call_ref_ = setup->call_ref;
    peer_number_ = setup->calling;
    remote_signal_ = setup->src_signal_address.ip();
    remote_media_ = setup->media_address.ip();
    net().spans().open(SpanKind::kTermination, config_.imsi.value(), name(),
                       now());
    auto proceed = pool_message<Q931CallProceeding>();
    proceed->call_ref = call_ref_;
    send_tunneled(remote_signal_, *proceed);
    enter(State::kIncomingArq);
    auto arq = pool_message<RasArq>();
    arq->endpoint_id = endpoint_id_;
    arq->call_ref = call_ref_;
    arq->calling = setup->calling;
    arq->called = config_.msisdn;
    arq->answer_call = true;
    send_tunneled(config_.gk_ip, *arq);
    retx_.arm(
        retx_key(RetxKind::kArq),
        [this] {
          if (state_ != State::kIncomingArq) return;
          auto again = pool_message<RasArq>();
          again->endpoint_id = endpoint_id_;
          again->call_ref = call_ref_;
          again->calling = peer_number_;
          again->called = config_.msisdn;
          again->answer_call = true;
          send_tunneled(config_.gk_ip, *again);
        },
        [this] {
          if (state_ != State::kIncomingArq) return;
          if (on_failure) on_failure("admission timed out");
          release_call(true, 102);
        });
    return;
  }
  if (dynamic_cast<const Q931CallProceeding*>(&inner) != nullptr) {
    retx_.ack(retx_key(RetxKind::kSetup));
    return;
  }
  if (const auto* alert = dynamic_cast<const Q931Alerting*>(&inner)) {
    retx_.ack(retx_key(RetxKind::kSetup));
    if (state_ == State::kCalling && alert->call_ref == call_ref_) {
      enter(State::kRingback);
      // enter() bumped the epoch, so an answer or release invalidates this.
      set_timer(config_.ringback_timeout,
                make_cookie(kRingbackKind, epoch_));
      if (on_ringback) on_ringback(call_ref_);
    }
    return;
  }
  if (const auto* conn = dynamic_cast<const Q931Connect*>(&inner)) {
    retx_.ack(retx_key(RetxKind::kSetup));
    if ((state_ == State::kRingback || state_ == State::kCalling) &&
        conn->call_ref == call_ref_) {
      net().spans().close(SpanKind::kOrigination, config_.imsi.value(),
                          SpanOutcome::kOk, now());
      remote_media_ = conn->media_address.ip();
      enter(State::kConnected);
      if (on_connected) on_connected(call_ref_);
      if (voice_remaining_ > 0) send_voice_frame();
    }
    return;
  }
  if (const auto* rel = dynamic_cast<const Q931ReleaseComplete*>(&inner)) {
    retx_.ack(retx_key(RetxKind::kSetup));
    if (rel->call_ref == call_ref_ && state_ != State::kIdle &&
        state_ != State::kDetached && state_ != State::kAwaitDcf &&
        state_ != State::kDeactivatingAfterCall) {
      release_call(false, rel->cause);
    }
    return;
  }
  if (const auto* rtp = dynamic_cast<const RtpPacket*>(&inner)) {
    if (state_ == State::kConnected) {
      ++voice_rx_;
      voice_latency_.add(
          SimDuration::micros(now().count_micros() - rtp->origin_us));
    }
    return;
  }

  VG_DEBUG("tr-ms", name() << ": ignoring tunneled " << inner.name());
}

}  // namespace vgprs
