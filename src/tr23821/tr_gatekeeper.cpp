#include "tr23821/tr_gatekeeper.hpp"

#include <stdexcept>

#include "common/log.hpp"
#include "gprs/messages.hpp"

namespace vgprs {

void TrGatekeeper::admit(const RasAdmissionRequestInfo& arq,
                         IpAddress requester, const Registration& reg) {
  if (arq.answer_call) {
    confirm_admission(arq, requester, reg.transport);
    return;
  }
  // Any terminating alias might be a GPRS MS whose PDP context was
  // deactivated while idle; interrogate the HLR for its IMSI first
  // (the TR gatekeeper cannot tell from the alias alone).
  Node* hlr = net().node_by_name(tr_.hlr_name);
  if (hlr == nullptr) throw std::logic_error(name() + ": no HLR");
  pending_by_alias_[arq.called] =
      PendingAdmission{arq, requester, reg.transport, Imsi{}};
  ++hlr_queries_;
  auto sri = pool_message<MapSendRoutingInformation>();
  sri->msisdn = arq.called;
  sri->gmsc_name = name();
  send(hlr->id(), std::move(sri));
}

void TrGatekeeper::on_other(const Envelope& env) {
  const auto* ack =
      dynamic_cast<const MapSendRoutingInformationAck*>(env.msg.get());
  if (ack == nullptr) {
    Gatekeeper::on_other(env);
    return;
  }
  auto it = pending_by_alias_.find(ack->msisdn);
  if (it == pending_by_alias_.end()) return;
  PendingAdmission& pending = it->second;
  if (!ack->found || !ack->imsi.valid()) {
    // Not a mobile subscriber: a plain H.323 endpoint — admit directly.
    confirm_admission(pending.arq, pending.requester, pending.dest);
    pending_by_alias_.erase(it);
    return;
  }
  // The IMSI is now known outside the GPRS operator's domain.
  ++imsis_learned_;
  pending.imsi = ack->imsi;
  alias_by_imsi_[ack->imsi] = ack->msisdn;
  ++ggsn_activations_;
  auto act = pool_message<GgsnActivationRequest>();
  act->imsi = ack->imsi;
  send_ip(tr_.ggsn_control_ip, *act);
}

void TrGatekeeper::on_ip(const IpDatagramInfo& dgram, const Message& inner) {
  if (const auto* rsp =
          dynamic_cast<const GgsnActivationResponse*>(&inner)) {
    auto alias_it = alias_by_imsi_.find(rsp->imsi);
    if (alias_it == alias_by_imsi_.end()) return;
    auto it = pending_by_alias_.find(alias_it->second);
    alias_by_imsi_.erase(alias_it);
    if (it == pending_by_alias_.end()) return;
    PendingAdmission pending = it->second;
    pending_by_alias_.erase(it);
    if (!rsp->success) {
      reject_admission(pending.arq, pending.requester,
                       ArjCause::kResourceUnavailable);
      return;
    }
    confirm_admission(pending.arq, pending.requester, pending.dest);
    return;
  }
  Gatekeeper::on_ip(dgram, inner);
}

}  // namespace vgprs
