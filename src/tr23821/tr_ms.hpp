// TrMobileStation: the 3G TR 23.821 handset — an MS that *is* an H.323
// terminal, with vocoder and H.323 stack on board (exactly what the paper
// says standard handsets lack).  It reaches the SGSN over the
// packet-switched radio path (PCU), so all of its signaling AND voice ride
// the GPRS user plane; the radio leg has queueing jitter, which is the
// paper's "no real-time guarantee" argument.
//
// PDP-context lifecycle per 3G TR 23.821: activate for registration,
// deactivate afterwards, re-activate for every call (MS-initiated for
// originations, network-initiated — which requires a static PDP address —
// for terminations).
#pragma once

#include <functional>
#include <string>

#include "gprs/ip.hpp"
#include "gprs/messages.hpp"
#include "h323/messages.hpp"
#include "sim/network.hpp"
#include "sim/retransmit.hpp"
#include "sim/stats.hpp"
#include "voice/rtp.hpp"

namespace vgprs {

class TrMobileStation final : public Node {
 public:
  struct Config {
    Imsi imsi;
    Msisdn msisdn;
    IpAddress static_pdp_address;  // required for terminating calls
    std::string sgsn_name;
    IpAddress gk_ip;
    std::uint16_t signal_port = 1720;
    std::uint16_t media_port = 5004;
    bool auto_answer = true;
    SimDuration answer_delay = SimDuration::millis(800);
    /// Ceiling on how long a caller listens to ringback before abandoning
    /// the call; without it a lost Q931_Connect left the MS in kRingback
    /// forever (the Setup retransmitter is acked by the alerting already).
    SimDuration ringback_timeout = SimDuration::seconds(60);
    /// TR 23.821 resource policy: drop the PDP context while idle.
    bool deactivate_pdp_when_idle = true;
  };

  enum class State {
    kDetached,
    kAttaching,
    kActivatingInitial,   // PDP context for registration
    kRasRegistering,
    kDeactivatingIdle,    // post-registration teardown
    kIdle,                // registered at GK, no PDP context (if policy on)
    kActivatingForCall,   // MO: rebuilding the context
    kActivatingForPage,   // MT: network-initiated activation
    kArqSent,
    kCalling,
    kRingback,
    kIncomingArq,
    kRinging,
    kConnected,
    kAwaitDcf,            // DRQ sent; deactivate once the GK confirms
    kDeactivatingAfterCall,
  };

  TrMobileStation(std::string name, Config config)
      : Node(std::move(name)), config_(std::move(config)) {}

  // --- user API ------------------------------------------------------------
  void power_on();
  void dial(Msisdn called);
  void answer();
  void hangup();
  void start_voice(std::uint32_t count,
                   SimDuration interval = SimDuration::millis(20));

  // --- introspection ----------------------------------------------------------
  [[nodiscard]] State state() const { return state_; }
  [[nodiscard]] bool pdp_active() const { return pdp_active_; }
  [[nodiscard]] std::uint32_t pdp_activations() const {
    return pdp_activations_;
  }
  [[nodiscard]] std::uint32_t pdp_deactivations() const {
    return pdp_deactivations_;
  }
  [[nodiscard]] const Histogram& voice_latency() const {
    return voice_latency_;
  }
  [[nodiscard]] std::uint32_t voice_frames_received() const {
    return voice_rx_;
  }
  [[nodiscard]] CallRef call_ref() const { return call_ref_; }

  // --- hooks ---------------------------------------------------------------------
  std::function<void()> on_registered;
  std::function<void(CallRef, Msisdn)> on_incoming;
  std::function<void(CallRef)> on_ringback;
  std::function<void(CallRef)> on_connected;
  std::function<void(CallRef)> on_released;
  std::function<void(std::string)> on_failure;

  void on_message(const Envelope& env) override;
  void on_timer(TimerId id, std::uint64_t cookie) override;
  /// Handset restart: everything is volatile; the subscriber has to power
  /// on again before any further service.
  void on_restart() override {
    retx_.reset();
    state_ = State::kDetached;
    attached_ = false;
    pdp_active_ = false;
    pdp_address_ = IpAddress{};
    endpoint_id_ = 0;
    pending_setup_ = nullptr;
    remote_signal_ = IpAddress{};
    remote_media_ = IpAddress{};
  }

 private:
  /// Keys for the handset's request–response exchanges (one subscriber per
  /// node, so the kind alone is the key).
  enum class RetxKind : std::uint64_t {
    kAttach = 1,
    kPdpActivate = 2,
    kPdpDeactivate = 3,
    kRrq = 4,
    kArq = 5,
    kDrq = 6,
    kSetup = 7,
  };
  static std::uint64_t retx_key(RetxKind kind) {
    return static_cast<std::uint64_t>(kind);
  }
  void enter(State s);
  [[nodiscard]] NodeId sgsn() const;
  void send_tunneled(IpAddress dst, const Message& inner);
  void activate_pdp();
  void give_up_pdp_activation();
  void deactivate_pdp(State next);
  void send_arq();
  void send_voice_frame();
  void release_call(bool notify_far_end, std::uint8_t cause);
  void handle_tunneled(const Message& inner);

  Config config_;
  Retransmitter retx_{*this};
  State state_ = State::kDetached;
  bool attached_ = false;
  bool pdp_active_ = false;
  IpAddress pdp_address_;
  std::uint32_t endpoint_id_ = 0;
  std::uint32_t pdp_activations_ = 0;
  std::uint32_t pdp_deactivations_ = 0;

  CallRef call_ref_;
  Msisdn peer_number_;
  IpAddress remote_signal_;
  IpAddress remote_media_;
  // A caller's Setup that overtook our page-triggered activation accept on
  // the jittery Gb path; replayed once the context is up.
  std::shared_ptr<Q931Setup> pending_setup_;
  std::uint32_t call_seq_ = 0;
  std::uint64_t epoch_ = 0;

  std::uint32_t voice_remaining_ = 0;
  std::uint32_t voice_seq_ = 0;
  std::uint32_t voice_rx_ = 0;
  SimDuration voice_interval_ = SimDuration::millis(20);
  Histogram voice_latency_;
};

}  // namespace vgprs
