#include "common/ids.hpp"

#include <array>
#include <charconv>
#include <cstdio>

namespace vgprs {
namespace {

std::optional<std::uint64_t> parse_digits(std::string_view text,
                                          std::uint8_t max_digits) {
  if (text.empty() || text.size() > max_digits) return std::nullopt;
  std::uint64_t value = 0;
  for (char c : text) {
    if (c < '0' || c > '9') return std::nullopt;
    value = value * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return value;
}

std::string format_digits(std::uint64_t value, std::uint8_t digits) {
  std::string out(digits, '0');
  for (int i = digits - 1; i >= 0 && value != 0; --i) {
    out[static_cast<std::size_t>(i)] = static_cast<char>('0' + value % 10);
    value /= 10;
  }
  return out;
}

}  // namespace

std::optional<Imsi> Imsi::parse(std::string_view text) {
  auto value = parse_digits(text, 15);
  if (!value || *value == 0) return std::nullopt;
  return Imsi(*value, static_cast<std::uint8_t>(text.size()));
}

std::uint16_t Imsi::mcc() const {
  std::uint64_t v = value_;
  for (int i = 0; i < digits_ - 3; ++i) v /= 10;
  return static_cast<std::uint16_t>(v);
}

std::string Imsi::to_string() const { return format_digits(value_, digits_); }

std::string Tmsi::to_string() const {
  char buf[16];
  std::snprintf(buf, sizeof buf, "0x%08X", value_);
  return buf;
}

std::optional<Msisdn> Msisdn::parse(std::string_view text) {
  auto value = parse_digits(text, 15);
  if (!value || *value == 0) return std::nullopt;
  return Msisdn(*value, static_cast<std::uint8_t>(text.size()));
}

std::uint16_t Msisdn::country_code() const {
  std::uint64_t v = value_;
  for (int i = 0; i < digits_ - 2; ++i) v /= 10;
  return static_cast<std::uint16_t>(v);
}

std::string Msisdn::to_string() const {
  return "+" + format_digits(value_, digits_);
}

std::string Msrn::to_string() const {
  return "MSRN:" + format_digits(value_, 12);
}

std::optional<IpAddress> IpAddress::parse(std::string_view dotted) {
  std::array<std::uint32_t, 4> octets{};
  std::size_t pos = 0;
  for (int i = 0; i < 4; ++i) {
    std::size_t end = (i < 3) ? dotted.find('.', pos) : dotted.size();
    if (end == std::string_view::npos) return std::nullopt;
    auto part = dotted.substr(pos, end - pos);
    auto value = parse_digits(part, 3);
    if (!value && part != "0") return std::nullopt;
    std::uint64_t v = value.value_or(0);
    if (v > 255 || part.empty()) return std::nullopt;
    octets[static_cast<std::size_t>(i)] = static_cast<std::uint32_t>(v);
    pos = end + 1;
  }
  return IpAddress((octets[0] << 24) | (octets[1] << 16) | (octets[2] << 8) |
                   octets[3]);
}

std::string IpAddress::to_string() const {
  char buf[20];
  std::snprintf(buf, sizeof buf, "%u.%u.%u.%u", (value_ >> 24) & 0xFF,
                (value_ >> 16) & 0xFF, (value_ >> 8) & 0xFF, value_ & 0xFF);
  return buf;
}

std::string TransportAddress::to_string() const {
  return ip_.to_string() + ":" + std::to_string(port_);
}

std::string LocationAreaId::to_string() const {
  return "LAI:" + std::to_string(code_);
}

std::string CellId::to_string() const {
  return "Cell:" + std::to_string(code_);
}

std::string TunnelId::to_string() const {
  char buf[16];
  std::snprintf(buf, sizeof buf, "TEID:%08X", value_);
  return buf;
}

std::string Nsapi::to_string() const {
  return "NSAPI:" + std::to_string(value_);
}

std::string CallRef::to_string() const {
  return "CR:" + std::to_string(value_);
}

}  // namespace vgprs
