// Deterministic, seedable RNG (xoshiro256**) so every simulation run and
// benchmark is exactly reproducible.  std::mt19937 distributions are not
// portable across standard libraries; we implement the few distributions we
// need directly.
#pragma once

#include <cmath>
#include <cstdint>

namespace vgprs {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    // SplitMix64 to expand the seed into the xoshiro state.
    auto next = [&seed]() {
      seed += 0x9E3779B97F4A7C15ULL;
      std::uint64_t z = seed;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
      return z ^ (z >> 31);
    };
    for (auto& s : state_) s = next();
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, bound); bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound) {
    // Lemire-style rejection-free-enough reduction; fine for simulation.
    return next_u64() % bound;
  }

  std::uint32_t next_u32() { return static_cast<std::uint32_t>(next_u64()); }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) {
    return lo + (hi - lo) * next_double();
  }

  bool bernoulli(double p) { return next_double() < p; }

  /// Exponential with the given mean (> 0); used for Poisson call arrivals.
  double exponential(double mean) {
    double u = next_double();
    if (u <= 0.0) u = 1e-18;
    return -mean * std::log(u);
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
};

}  // namespace vgprs
