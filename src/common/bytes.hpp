// Bounds-checked big-endian byte stream reader/writer used by every
// protocol codec.  Messages are serialized when they cross simulated links,
// so a codec bug corrupts live flows rather than only failing unit tests.
#pragma once

#include <bit>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/ids.hpp"
#include "common/result.hpp"

namespace vgprs {

class ByteWriter {
 public:
  ByteWriter() = default;

  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v) {
    buf_.push_back(static_cast<std::uint8_t>(v >> 8));
    buf_.push_back(static_cast<std::uint8_t>(v));
  }
  void u32(std::uint32_t v) {
    u16(static_cast<std::uint16_t>(v >> 16));
    u16(static_cast<std::uint16_t>(v));
  }
  void u64(std::uint64_t v) {
    u32(static_cast<std::uint32_t>(v >> 32));
    u32(static_cast<std::uint32_t>(v));
  }
  /// IEEE-754 double, bit-exact (the binary trace's metric records must
  /// round-trip values the JSON exporters then format identically).
  void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }
  /// Length-prefixed (u16) byte blob.
  void bytes(std::span<const std::uint8_t> data) {
    u16(static_cast<std::uint16_t>(data.size()));
    buf_.insert(buf_.end(), data.begin(), data.end());
  }
  /// Length-prefixed (u16) UTF-8 string.
  void str(std::string_view s) {
    u16(static_cast<std::uint16_t>(s.size()));
    buf_.insert(buf_.end(), s.begin(), s.end());
  }

  void imsi(const Imsi& v) {
    u64(v.value());
    u8(v.digits());
  }
  void tmsi(const Tmsi& v) { u32(v.value()); }
  void msisdn(const Msisdn& v) {
    u64(v.value());
    u8(v.digits());
  }
  void msrn(const Msrn& v) { u64(v.value()); }
  void ip(const IpAddress& v) { u32(v.value()); }
  void transport(const TransportAddress& v) {
    ip(v.ip());
    u16(v.port());
  }
  void lai(const LocationAreaId& v) { u32(v.code()); }
  void cell(const CellId& v) { u32(v.code()); }
  void teid(const TunnelId& v) { u32(v.value()); }
  void nsapi(const Nsapi& v) { u8(v.value()); }
  void call_ref(const CallRef& v) { u32(v.value()); }
  void boolean(bool v) { u8(v ? 1 : 0); }

  [[nodiscard]] const std::vector<std::uint8_t>& data() const { return buf_; }
  [[nodiscard]] std::vector<std::uint8_t> take() { return std::move(buf_); }
  [[nodiscard]] std::size_t size() const { return buf_.size(); }

  /// Drops the contents but keeps the capacity, so a long-lived writer
  /// (e.g. the Network's per-send scratch buffer) stops allocating once it
  /// has seen the largest message.
  void clear() { buf_.clear(); }
  void reserve(std::size_t n) { buf_.reserve(n); }

 private:
  std::vector<std::uint8_t> buf_;
};

class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}

  [[nodiscard]] bool failed() const { return failed_; }
  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }
  /// True when the whole buffer was consumed without error.
  [[nodiscard]] bool exhausted() const { return !failed_ && remaining() == 0; }

  std::uint8_t u8() {
    if (!require(1)) return 0;
    return data_[pos_++];
  }
  std::uint16_t u16() {
    if (!require(2)) return 0;
    std::uint16_t v = static_cast<std::uint16_t>(
        (std::uint16_t{data_[pos_]} << 8) | data_[pos_ + 1]);
    pos_ += 2;
    return v;
  }
  std::uint32_t u32() {
    std::uint32_t hi = u16();
    std::uint32_t lo = u16();
    return (hi << 16) | lo;
  }
  std::uint64_t u64() {
    std::uint64_t hi = u32();
    std::uint64_t lo = u32();
    return (hi << 32) | lo;
  }
  double f64() { return std::bit_cast<double>(u64()); }
  std::vector<std::uint8_t> bytes() {
    std::uint16_t n = u16();
    if (!require(n)) return {};
    std::vector<std::uint8_t> out(data_.begin() + static_cast<long>(pos_),
                                  data_.begin() + static_cast<long>(pos_ + n));
    pos_ += n;
    return out;
  }
  std::string str() {
    std::uint16_t n = u16();
    if (!require(n)) return {};
    std::string out(reinterpret_cast<const char*>(data_.data() + pos_), n);
    pos_ += n;
    return out;
  }

  Imsi imsi() {
    std::uint64_t v = u64();
    std::uint8_t d = u8();
    return Imsi(v, d);
  }
  Tmsi tmsi() { return Tmsi(u32()); }
  Msisdn msisdn() {
    std::uint64_t v = u64();
    std::uint8_t d = u8();
    return Msisdn(v, d);
  }
  Msrn msrn() { return Msrn(u64()); }
  IpAddress ip() { return IpAddress(u32()); }
  TransportAddress transport() {
    IpAddress a = ip();
    std::uint16_t p = u16();
    return TransportAddress(a, p);
  }
  LocationAreaId lai() { return LocationAreaId(u32()); }
  CellId cell() { return CellId(u32()); }
  TunnelId teid() { return TunnelId(u32()); }
  Nsapi nsapi() { return Nsapi(u8()); }
  CallRef call_ref() { return CallRef(u32()); }
  /// Booleans have exactly two legal wire values; anything else is a
  /// non-canonical encoding and must be refused, not normalized (otherwise
  /// decode -> re-encode changes bytes and relays corrupt the stream).
  bool boolean() {
    std::uint8_t v = u8();
    if (v > 1) bad_value_ = true;
    return v != 0;
  }

  /// Marks the current field as out-of-domain (for enum range checks in
  /// payload decoders).
  void mark_bad_value() { bad_value_ = true; }

  [[nodiscard]] Status status() const {
    if (failed_) return Status(ErrorCode::kDecodeTruncated, "short buffer");
    if (bad_value_) {
      return Status(ErrorCode::kDecodeBadValue, "field value out of domain");
    }
    return Status::ok_status();
  }

 private:
  bool require(std::size_t n) {
    if (failed_ || remaining() < n) {
      failed_ = true;
      return false;
    }
    return true;
  }

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
  bool failed_ = false;
  bool bad_value_ = false;
};

/// Hex dump helper for traces and debugging.
std::string hex_dump(std::span<const std::uint8_t> data,
                     std::size_t max_bytes = 64);

}  // namespace vgprs
