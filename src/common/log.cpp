#include "common/log.hpp"

#include <cstdio>

namespace vgprs {

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

void Logger::write(LogLevel level, const std::string& component,
                   const std::string& message) {
  const char* tag = "?";
  switch (level) {
    case LogLevel::kDebug: tag = "DBG"; break;
    case LogLevel::kInfo: tag = "INF"; break;
    case LogLevel::kWarn: tag = "WRN"; break;
    case LogLevel::kError: tag = "ERR"; break;
    case LogLevel::kOff: return;
  }
  std::fprintf(stderr, "[%s] %-12s %s\n", tag, component.c_str(),
               message.c_str());
}

}  // namespace vgprs
