// Lightweight Result<T> / Error model (std::expected is C++23; we target
// C++20).  Used by codecs and procedure state machines: protocol failures
// are values, not exceptions, because a signaling node must keep running
// when a peer misbehaves.
#pragma once

#include <cassert>
#include <string>
#include <utility>
#include <variant>

namespace vgprs {

enum class ErrorCode {
  kNone = 0,
  kDecodeTruncated,     // byte stream ended mid-field
  kDecodeBadValue,      // field value outside its domain
  kDecodeUnknownType,   // unknown wire message type
  kNotFound,            // lookup miss (subscriber, context, route, ...)
  kAlreadyExists,       // duplicate registration / context
  kRejected,            // peer refused (ARJ, authorization failure, ...)
  kTimeout,             // procedure timer expired
  kInvalidState,        // event not legal in current FSM state
  kResourceExhausted,   // no channel / no IP address / no trunk
  kInternal,
};

[[nodiscard]] constexpr const char* to_string(ErrorCode code) {
  switch (code) {
    case ErrorCode::kNone: return "none";
    case ErrorCode::kDecodeTruncated: return "decode-truncated";
    case ErrorCode::kDecodeBadValue: return "decode-bad-value";
    case ErrorCode::kDecodeUnknownType: return "decode-unknown-type";
    case ErrorCode::kNotFound: return "not-found";
    case ErrorCode::kAlreadyExists: return "already-exists";
    case ErrorCode::kRejected: return "rejected";
    case ErrorCode::kTimeout: return "timeout";
    case ErrorCode::kInvalidState: return "invalid-state";
    case ErrorCode::kResourceExhausted: return "resource-exhausted";
    case ErrorCode::kInternal: return "internal";
  }
  return "unknown";
}

struct Error {
  ErrorCode code = ErrorCode::kInternal;
  std::string message;

  [[nodiscard]] std::string to_string() const {
    std::string out = vgprs::to_string(code);
    if (!message.empty()) {
      out += ": ";
      out += message;
    }
    return out;
  }
};

template <typename T>
class Result {
 public:
  Result(T value) : state_(std::move(value)) {}                  // NOLINT
  Result(Error error) : state_(std::move(error)) {}              // NOLINT
  Result(ErrorCode code, std::string message = {})               // NOLINT
      : state_(Error{code, std::move(message)}) {}

  [[nodiscard]] bool ok() const { return std::holds_alternative<T>(state_); }
  explicit operator bool() const { return ok(); }

  [[nodiscard]] const T& value() const& {
    assert(ok());
    return std::get<T>(state_);
  }
  [[nodiscard]] T& value() & {
    assert(ok());
    return std::get<T>(state_);
  }
  [[nodiscard]] T&& value() && {
    assert(ok());
    return std::get<T>(std::move(state_));
  }

  [[nodiscard]] const Error& error() const {
    assert(!ok());
    return std::get<Error>(state_);
  }

  [[nodiscard]] T value_or(T fallback) const {
    return ok() ? std::get<T>(state_) : std::move(fallback);
  }

 private:
  std::variant<T, Error> state_;
};

/// Result with no payload.
class Status {
 public:
  Status() = default;
  Status(Error error) : error_(std::move(error)) {}  // NOLINT
  Status(ErrorCode code, std::string message = {})   // NOLINT
      : error_(Error{code, std::move(message)}) {}

  static Status ok_status() { return {}; }

  [[nodiscard]] bool ok() const { return error_.code == ErrorCode::kNone; }
  explicit operator bool() const { return ok(); }

  [[nodiscard]] const Error& error() const {
    assert(!ok());
    return error_;
  }

 private:
  Error error_{ErrorCode::kNone, {}};
};

}  // namespace vgprs
