// Minimal JSON writer for the structured exports (metrics snapshots, JSONL
// traces, Chrome trace_event span dumps).  Hand-rolled on purpose: the repo
// takes no third-party dependencies beyond the test/bench frameworks, and
// the emit side of JSON is small — escaping, number formatting, and comma
// bookkeeping.
//
// Usage is push-style with explicit scopes; the writer inserts commas and
// (optionally) indentation:
//
//   JsonWriter w(out);
//   w.begin_object();
//   w.key("schema"); w.value("vgprs.report.v1");
//   w.key("procedures"); w.begin_array();
//   ...
//   w.end_array();
//   w.end_object();
//
// Non-finite doubles are emitted as null — JSON has no Inf/NaN, and a
// metrics consumer is better served by an explicit hole than by a parse
// error.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cmath>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace vgprs {

class JsonWriter {
 public:
  /// indent == 0 writes compact single-line JSON (what JSONL needs).
  explicit JsonWriter(std::ostream& out, int indent = 2)
      : out_(out), indent_(indent) {}

  void begin_object() { open('{'); }
  void end_object() { close('}'); }
  void begin_array() { open('['); }
  void end_array() { close(']'); }

  void key(std::string_view k) {
    separate();
    write_string(k);
    out_ << (indent_ > 0 ? ": " : ":");
    pending_key_ = true;
  }

  void value(std::string_view v) {
    separate();
    write_string(v);
  }
  void value(const char* v) { value(std::string_view(v)); }
  void value(bool v) {
    separate();
    out_ << (v ? "true" : "false");
  }
  void value(double v) {
    separate();
    if (!std::isfinite(v)) {
      out_ << "null";
      return;
    }
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.12g", v);
    out_ << buf;
  }
  void value(std::int64_t v) {
    separate();
    out_ << v;
  }
  void value(std::uint64_t v) {
    separate();
    out_ << v;
  }
  void value(int v) { value(static_cast<std::int64_t>(v)); }
  void value(unsigned v) { value(static_cast<std::uint64_t>(v)); }
  void null() {
    separate();
    out_ << "null";
  }

  /// key + scalar in one call.
  template <typename T>
  void kv(std::string_view k, T v) {
    key(k);
    value(v);
  }

  /// Standard JSON string escaping (quotes, backslash, control chars).
  static std::string escape(std::string_view s) {
    std::string out;
    out.reserve(s.size());
    for (unsigned char c : s) {
      switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\b': out += "\\b"; break;
        case '\f': out += "\\f"; break;
        case '\n': out += "\\n"; break;
        case '\r': out += "\\r"; break;
        case '\t': out += "\\t"; break;
        default:
          if (c < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof buf, "\\u%04x", c);
            out += buf;
          } else {
            out += static_cast<char>(c);
          }
      }
    }
    return out;
  }

 private:
  struct Scope {
    char closer;
    bool has_items = false;
  };

  void write_string(std::string_view s) {
    out_ << '"' << escape(s) << '"';
  }

  /// Emits the comma/newline/indent owed before the next item in the
  /// current scope.  A value directly after key() owes nothing.
  void separate() {
    if (pending_key_) {
      pending_key_ = false;
      return;
    }
    if (stack_.empty()) return;
    if (stack_.back().has_items) out_ << ',';
    stack_.back().has_items = true;
    newline_indent();
  }

  void open(char opener) {
    separate();
    out_ << opener;
    stack_.push_back(Scope{opener == '{' ? '}' : ']'});
  }

  void close(char closer) {
    const bool had_items = !stack_.empty() && stack_.back().has_items;
    if (!stack_.empty()) stack_.pop_back();
    if (had_items) newline_indent();
    out_ << closer;
    pending_key_ = false;
  }

  void newline_indent() {
    if (indent_ <= 0) return;
    out_ << '\n';
    for (std::size_t i = 0; i < stack_.size() * static_cast<std::size_t>(indent_); ++i) {
      out_ << ' ';
    }
  }

  std::ostream& out_;
  int indent_;
  bool pending_key_ = false;
  std::vector<Scope> stack_;
};

}  // namespace vgprs
