#include "common/bytes.hpp"

namespace vgprs {

std::string hex_dump(std::span<const std::uint8_t> data,
                     std::size_t max_bytes) {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out;
  std::size_t n = std::min(data.size(), max_bytes);
  out.reserve(n * 3);
  for (std::size_t i = 0; i < n; ++i) {
    if (i != 0) out.push_back(' ');
    out.push_back(kHex[data[i] >> 4]);
    out.push_back(kHex[data[i] & 0xF]);
  }
  if (n < data.size()) out += " ...";
  return out;
}

}  // namespace vgprs
