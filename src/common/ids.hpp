// Strongly typed identifiers used throughout the GSM/GPRS/H.323 stack.
//
// Every identifier the paper's procedures carry (IMSI, TMSI, MSISDN, IP
// addresses, location areas, tunnel endpoints, ...) gets its own type so
// that a call-routing function cannot silently accept an IMSI where an
// MSISDN is required.  All types are small value types with total ordering
// and hashing so they can key the various location/context tables.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>

namespace vgprs {

/// International Mobile Subscriber Identity: up to 15 decimal digits
/// (MCC + MNC + MSIN).  Stored as a packed integer; the digit count is
/// preserved so formatting round-trips.
class Imsi {
 public:
  constexpr Imsi() = default;
  constexpr Imsi(std::uint64_t value, std::uint8_t digits = 15)
      : value_(value), digits_(digits) {}

  /// Parses a decimal digit string ("466920123456789").  Returns nullopt on
  /// empty input, non-digits, or more than 15 digits.
  static std::optional<Imsi> parse(std::string_view text);

  [[nodiscard]] constexpr std::uint64_t value() const { return value_; }
  [[nodiscard]] constexpr std::uint8_t digits() const { return digits_; }
  [[nodiscard]] constexpr bool valid() const { return value_ != 0; }

  /// Mobile Country Code: the first three digits.
  [[nodiscard]] std::uint16_t mcc() const;

  [[nodiscard]] std::string to_string() const;

  friend constexpr auto operator<=>(const Imsi&, const Imsi&) = default;

 private:
  std::uint64_t value_ = 0;
  std::uint8_t digits_ = 0;
};

/// Temporary Mobile Subscriber Identity: an opaque 32-bit alias assigned by
/// the VLR to avoid sending the IMSI over the air.
class Tmsi {
 public:
  constexpr Tmsi() = default;
  constexpr explicit Tmsi(std::uint32_t value) : value_(value) {}

  [[nodiscard]] constexpr std::uint32_t value() const { return value_; }
  [[nodiscard]] constexpr bool valid() const { return value_ != 0; }

  [[nodiscard]] std::string to_string() const;

  friend constexpr auto operator<=>(const Tmsi&, const Tmsi&) = default;

 private:
  std::uint32_t value_ = 0;
};

/// Mobile Station ISDN number (the E.164 phone number dialled to reach the
/// subscriber).  Also used for the H.323 alias address in RAS registration.
class Msisdn {
 public:
  constexpr Msisdn() = default;
  constexpr Msisdn(std::uint64_t value, std::uint8_t digits)
      : value_(value), digits_(digits) {}

  static std::optional<Msisdn> parse(std::string_view text);

  [[nodiscard]] constexpr std::uint64_t value() const { return value_; }
  [[nodiscard]] constexpr std::uint8_t digits() const { return digits_; }
  [[nodiscard]] constexpr bool valid() const { return digits_ != 0; }

  /// E.164 country code: leading 1-3 digits.  We use a simplified scheme in
  /// which the first two digits are the country code (e.g. "44" UK,
  /// "85" Hong Kong in our scenarios).
  [[nodiscard]] std::uint16_t country_code() const;

  [[nodiscard]] std::string to_string() const;

  friend constexpr auto operator<=>(const Msisdn&, const Msisdn&) = default;

 private:
  std::uint64_t value_ = 0;
  std::uint8_t digits_ = 0;
};

/// Mobile Station Roaming Number: a temporary E.164 number the VLR hands to
/// the HLR so the GMSC can route an incoming call to the serving MSC
/// (the second leg of the tromboning scenario, Fig. 7).
class Msrn {
 public:
  constexpr Msrn() = default;
  constexpr explicit Msrn(std::uint64_t value) : value_(value) {}

  [[nodiscard]] constexpr std::uint64_t value() const { return value_; }
  [[nodiscard]] constexpr bool valid() const { return value_ != 0; }
  [[nodiscard]] std::string to_string() const;

  friend constexpr auto operator<=>(const Msrn&, const Msrn&) = default;

 private:
  std::uint64_t value_ = 0;
};

/// IPv4 address, host byte order internally.
class IpAddress {
 public:
  constexpr IpAddress() = default;
  constexpr explicit IpAddress(std::uint32_t value) : value_(value) {}
  constexpr IpAddress(std::uint8_t a, std::uint8_t b, std::uint8_t c,
                      std::uint8_t d)
      : value_((std::uint32_t{a} << 24) | (std::uint32_t{b} << 16) |
               (std::uint32_t{c} << 8) | std::uint32_t{d}) {}

  static std::optional<IpAddress> parse(std::string_view dotted);

  [[nodiscard]] constexpr std::uint32_t value() const { return value_; }
  [[nodiscard]] constexpr bool valid() const { return value_ != 0; }
  [[nodiscard]] std::string to_string() const;

  friend constexpr auto operator<=>(const IpAddress&, const IpAddress&) =
      default;

 private:
  std::uint32_t value_ = 0;
};

/// Transport address (IP + port) as used by H.225.0 RAS and call signaling.
class TransportAddress {
 public:
  constexpr TransportAddress() = default;
  constexpr TransportAddress(IpAddress ip, std::uint16_t port)
      : ip_(ip), port_(port) {}

  [[nodiscard]] constexpr IpAddress ip() const { return ip_; }
  [[nodiscard]] constexpr std::uint16_t port() const { return port_; }
  [[nodiscard]] constexpr bool valid() const { return ip_.valid(); }
  [[nodiscard]] std::string to_string() const;

  friend constexpr auto operator<=>(const TransportAddress&,
                                    const TransportAddress&) = default;

 private:
  IpAddress ip_;
  std::uint16_t port_ = 0;
};

/// GSM Location Area Identity (MCC+MNC+LAC collapsed to a single code per
/// simulated PLMN).
class LocationAreaId {
 public:
  constexpr LocationAreaId() = default;
  constexpr explicit LocationAreaId(std::uint32_t code) : code_(code) {}

  [[nodiscard]] constexpr std::uint32_t code() const { return code_; }
  [[nodiscard]] constexpr bool valid() const { return code_ != 0; }
  [[nodiscard]] std::string to_string() const;

  friend constexpr auto operator<=>(const LocationAreaId&,
                                    const LocationAreaId&) = default;

 private:
  std::uint32_t code_ = 0;
};

/// Cell identity within a location area.
class CellId {
 public:
  constexpr CellId() = default;
  constexpr explicit CellId(std::uint32_t code) : code_(code) {}

  [[nodiscard]] constexpr std::uint32_t code() const { return code_; }
  [[nodiscard]] constexpr bool valid() const { return code_ != 0; }
  [[nodiscard]] std::string to_string() const;

  friend constexpr auto operator<=>(const CellId&, const CellId&) = default;

 private:
  std::uint32_t code_ = 0;
};

/// GPRS Tunnel Endpoint Identifier (GTP).
class TunnelId {
 public:
  constexpr TunnelId() = default;
  constexpr explicit TunnelId(std::uint32_t value) : value_(value) {}

  [[nodiscard]] constexpr std::uint32_t value() const { return value_; }
  [[nodiscard]] constexpr bool valid() const { return value_ != 0; }
  [[nodiscard]] std::string to_string() const;

  friend constexpr auto operator<=>(const TunnelId&, const TunnelId&) =
      default;

 private:
  std::uint32_t value_ = 0;
};

/// Network Service Access Point Identifier distinguishing PDP contexts of
/// one subscriber (vGPRS uses two per MS: signaling and voice).
class Nsapi {
 public:
  constexpr Nsapi() = default;
  constexpr explicit Nsapi(std::uint8_t value) : value_(value) {}

  [[nodiscard]] constexpr std::uint8_t value() const { return value_; }
  [[nodiscard]] constexpr bool valid() const { return value_ >= 5; }
  [[nodiscard]] std::string to_string() const;

  friend constexpr auto operator<=>(const Nsapi&, const Nsapi&) = default;

 private:
  std::uint8_t value_ = 0;  // valid NSAPIs are 5..15
};

/// H.225 call reference value (Q.931 call identifier).
class CallRef {
 public:
  constexpr CallRef() = default;
  constexpr explicit CallRef(std::uint32_t value) : value_(value) {}

  [[nodiscard]] constexpr std::uint32_t value() const { return value_; }
  [[nodiscard]] constexpr bool valid() const { return value_ != 0; }
  [[nodiscard]] std::string to_string() const;

  friend constexpr auto operator<=>(const CallRef&, const CallRef&) = default;

 private:
  std::uint32_t value_ = 0;
};

}  // namespace vgprs

template <>
struct std::hash<vgprs::Imsi> {
  std::size_t operator()(const vgprs::Imsi& id) const noexcept {
    return std::hash<std::uint64_t>{}(id.value());
  }
};
template <>
struct std::hash<vgprs::Tmsi> {
  std::size_t operator()(const vgprs::Tmsi& id) const noexcept {
    return std::hash<std::uint32_t>{}(id.value());
  }
};
template <>
struct std::hash<vgprs::Msisdn> {
  std::size_t operator()(const vgprs::Msisdn& id) const noexcept {
    return std::hash<std::uint64_t>{}(id.value());
  }
};
template <>
struct std::hash<vgprs::Msrn> {
  std::size_t operator()(const vgprs::Msrn& id) const noexcept {
    return std::hash<std::uint64_t>{}(id.value());
  }
};
template <>
struct std::hash<vgprs::IpAddress> {
  std::size_t operator()(const vgprs::IpAddress& id) const noexcept {
    return std::hash<std::uint32_t>{}(id.value());
  }
};
template <>
struct std::hash<vgprs::TunnelId> {
  std::size_t operator()(const vgprs::TunnelId& id) const noexcept {
    return std::hash<std::uint32_t>{}(id.value());
  }
};
template <>
struct std::hash<vgprs::CallRef> {
  std::size_t operator()(const vgprs::CallRef& id) const noexcept {
    return std::hash<std::uint32_t>{}(id.value());
  }
};
template <>
struct std::hash<vgprs::LocationAreaId> {
  std::size_t operator()(const vgprs::LocationAreaId& id) const noexcept {
    return std::hash<std::uint32_t>{}(id.code());
  }
};
template <>
struct std::hash<vgprs::CellId> {
  std::size_t operator()(const vgprs::CellId& id) const noexcept {
    return std::hash<std::uint32_t>{}(id.code());
  }
};
