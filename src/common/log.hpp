// Minimal leveled logger.  Simulation nodes log signaling events at kDebug;
// benches and examples raise the level to keep output readable.
#pragma once

#include <sstream>
#include <string>

namespace vgprs {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

class Logger {
 public:
  static Logger& instance();

  void set_level(LogLevel level) { level_ = level; }
  [[nodiscard]] LogLevel level() const { return level_; }
  [[nodiscard]] bool enabled(LogLevel level) const { return level >= level_; }

  void write(LogLevel level, const std::string& component,
             const std::string& message);

 private:
  Logger() = default;
  LogLevel level_ = LogLevel::kWarn;
};

#define VG_LOG(level, component, expr)                                   \
  do {                                                                   \
    if (::vgprs::Logger::instance().enabled(level)) {                    \
      std::ostringstream vg_log_os;                                      \
      vg_log_os << expr;                                                 \
      ::vgprs::Logger::instance().write(level, component,                \
                                        vg_log_os.str());                \
    }                                                                    \
  } while (0)

#define VG_DEBUG(component, expr) VG_LOG(::vgprs::LogLevel::kDebug, component, expr)
#define VG_INFO(component, expr) VG_LOG(::vgprs::LogLevel::kInfo, component, expr)
#define VG_WARN(component, expr) VG_LOG(::vgprs::LogLevel::kWarn, component, expr)
#define VG_ERROR(component, expr) VG_LOG(::vgprs::LogLevel::kError, component, expr)

}  // namespace vgprs
