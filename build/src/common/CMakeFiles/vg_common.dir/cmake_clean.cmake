file(REMOVE_RECURSE
  "CMakeFiles/vg_common.dir/bytes.cpp.o"
  "CMakeFiles/vg_common.dir/bytes.cpp.o.d"
  "CMakeFiles/vg_common.dir/ids.cpp.o"
  "CMakeFiles/vg_common.dir/ids.cpp.o.d"
  "CMakeFiles/vg_common.dir/log.cpp.o"
  "CMakeFiles/vg_common.dir/log.cpp.o.d"
  "libvg_common.a"
  "libvg_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vg_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
