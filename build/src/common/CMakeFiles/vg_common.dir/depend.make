# Empty dependencies file for vg_common.
# This may be replaced when dependencies are built.
