file(REMOVE_RECURSE
  "libvg_common.a"
)
