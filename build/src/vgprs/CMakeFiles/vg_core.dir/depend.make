# Empty dependencies file for vg_core.
# This may be replaced when dependencies are built.
