file(REMOVE_RECURSE
  "libvg_core.a"
)
