file(REMOVE_RECURSE
  "CMakeFiles/vg_core.dir/scenario.cpp.o"
  "CMakeFiles/vg_core.dir/scenario.cpp.o.d"
  "CMakeFiles/vg_core.dir/vmsc.cpp.o"
  "CMakeFiles/vg_core.dir/vmsc.cpp.o.d"
  "libvg_core.a"
  "libvg_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vg_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
