# Empty compiler generated dependencies file for vg_gprs.
# This may be replaced when dependencies are built.
