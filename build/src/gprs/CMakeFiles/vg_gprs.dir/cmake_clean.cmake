file(REMOVE_RECURSE
  "CMakeFiles/vg_gprs.dir/data_ms.cpp.o"
  "CMakeFiles/vg_gprs.dir/data_ms.cpp.o.d"
  "CMakeFiles/vg_gprs.dir/ggsn.cpp.o"
  "CMakeFiles/vg_gprs.dir/ggsn.cpp.o.d"
  "CMakeFiles/vg_gprs.dir/ip.cpp.o"
  "CMakeFiles/vg_gprs.dir/ip.cpp.o.d"
  "CMakeFiles/vg_gprs.dir/messages.cpp.o"
  "CMakeFiles/vg_gprs.dir/messages.cpp.o.d"
  "CMakeFiles/vg_gprs.dir/sgsn.cpp.o"
  "CMakeFiles/vg_gprs.dir/sgsn.cpp.o.d"
  "libvg_gprs.a"
  "libvg_gprs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vg_gprs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
