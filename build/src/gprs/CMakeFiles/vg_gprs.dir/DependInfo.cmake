
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gprs/data_ms.cpp" "src/gprs/CMakeFiles/vg_gprs.dir/data_ms.cpp.o" "gcc" "src/gprs/CMakeFiles/vg_gprs.dir/data_ms.cpp.o.d"
  "/root/repo/src/gprs/ggsn.cpp" "src/gprs/CMakeFiles/vg_gprs.dir/ggsn.cpp.o" "gcc" "src/gprs/CMakeFiles/vg_gprs.dir/ggsn.cpp.o.d"
  "/root/repo/src/gprs/ip.cpp" "src/gprs/CMakeFiles/vg_gprs.dir/ip.cpp.o" "gcc" "src/gprs/CMakeFiles/vg_gprs.dir/ip.cpp.o.d"
  "/root/repo/src/gprs/messages.cpp" "src/gprs/CMakeFiles/vg_gprs.dir/messages.cpp.o" "gcc" "src/gprs/CMakeFiles/vg_gprs.dir/messages.cpp.o.d"
  "/root/repo/src/gprs/sgsn.cpp" "src/gprs/CMakeFiles/vg_gprs.dir/sgsn.cpp.o" "gcc" "src/gprs/CMakeFiles/vg_gprs.dir/sgsn.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/gsm/CMakeFiles/vg_gsm.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/vg_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/vg_common.dir/DependInfo.cmake"
  "/root/repo/build/src/pstn/CMakeFiles/vg_pstn.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
