file(REMOVE_RECURSE
  "libvg_gprs.a"
)
