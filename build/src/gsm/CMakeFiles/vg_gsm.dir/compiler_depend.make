# Empty compiler generated dependencies file for vg_gsm.
# This may be replaced when dependencies are built.
