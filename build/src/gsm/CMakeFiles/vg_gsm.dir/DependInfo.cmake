
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gsm/bsc.cpp" "src/gsm/CMakeFiles/vg_gsm.dir/bsc.cpp.o" "gcc" "src/gsm/CMakeFiles/vg_gsm.dir/bsc.cpp.o.d"
  "/root/repo/src/gsm/bts.cpp" "src/gsm/CMakeFiles/vg_gsm.dir/bts.cpp.o" "gcc" "src/gsm/CMakeFiles/vg_gsm.dir/bts.cpp.o.d"
  "/root/repo/src/gsm/hlr.cpp" "src/gsm/CMakeFiles/vg_gsm.dir/hlr.cpp.o" "gcc" "src/gsm/CMakeFiles/vg_gsm.dir/hlr.cpp.o.d"
  "/root/repo/src/gsm/messages.cpp" "src/gsm/CMakeFiles/vg_gsm.dir/messages.cpp.o" "gcc" "src/gsm/CMakeFiles/vg_gsm.dir/messages.cpp.o.d"
  "/root/repo/src/gsm/mobile_station.cpp" "src/gsm/CMakeFiles/vg_gsm.dir/mobile_station.cpp.o" "gcc" "src/gsm/CMakeFiles/vg_gsm.dir/mobile_station.cpp.o.d"
  "/root/repo/src/gsm/msc.cpp" "src/gsm/CMakeFiles/vg_gsm.dir/msc.cpp.o" "gcc" "src/gsm/CMakeFiles/vg_gsm.dir/msc.cpp.o.d"
  "/root/repo/src/gsm/msc_base.cpp" "src/gsm/CMakeFiles/vg_gsm.dir/msc_base.cpp.o" "gcc" "src/gsm/CMakeFiles/vg_gsm.dir/msc_base.cpp.o.d"
  "/root/repo/src/gsm/vlr.cpp" "src/gsm/CMakeFiles/vg_gsm.dir/vlr.cpp.o" "gcc" "src/gsm/CMakeFiles/vg_gsm.dir/vlr.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/pstn/CMakeFiles/vg_pstn.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/vg_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/vg_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
