file(REMOVE_RECURSE
  "CMakeFiles/vg_gsm.dir/bsc.cpp.o"
  "CMakeFiles/vg_gsm.dir/bsc.cpp.o.d"
  "CMakeFiles/vg_gsm.dir/bts.cpp.o"
  "CMakeFiles/vg_gsm.dir/bts.cpp.o.d"
  "CMakeFiles/vg_gsm.dir/hlr.cpp.o"
  "CMakeFiles/vg_gsm.dir/hlr.cpp.o.d"
  "CMakeFiles/vg_gsm.dir/messages.cpp.o"
  "CMakeFiles/vg_gsm.dir/messages.cpp.o.d"
  "CMakeFiles/vg_gsm.dir/mobile_station.cpp.o"
  "CMakeFiles/vg_gsm.dir/mobile_station.cpp.o.d"
  "CMakeFiles/vg_gsm.dir/msc.cpp.o"
  "CMakeFiles/vg_gsm.dir/msc.cpp.o.d"
  "CMakeFiles/vg_gsm.dir/msc_base.cpp.o"
  "CMakeFiles/vg_gsm.dir/msc_base.cpp.o.d"
  "CMakeFiles/vg_gsm.dir/vlr.cpp.o"
  "CMakeFiles/vg_gsm.dir/vlr.cpp.o.d"
  "libvg_gsm.a"
  "libvg_gsm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vg_gsm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
