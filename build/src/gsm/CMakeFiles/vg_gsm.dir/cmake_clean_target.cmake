file(REMOVE_RECURSE
  "libvg_gsm.a"
)
