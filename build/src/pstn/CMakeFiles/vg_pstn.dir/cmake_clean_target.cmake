file(REMOVE_RECURSE
  "libvg_pstn.a"
)
