
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pstn/phone.cpp" "src/pstn/CMakeFiles/vg_pstn.dir/phone.cpp.o" "gcc" "src/pstn/CMakeFiles/vg_pstn.dir/phone.cpp.o.d"
  "/root/repo/src/pstn/switch.cpp" "src/pstn/CMakeFiles/vg_pstn.dir/switch.cpp.o" "gcc" "src/pstn/CMakeFiles/vg_pstn.dir/switch.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/vg_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/vg_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
