file(REMOVE_RECURSE
  "CMakeFiles/vg_pstn.dir/phone.cpp.o"
  "CMakeFiles/vg_pstn.dir/phone.cpp.o.d"
  "CMakeFiles/vg_pstn.dir/switch.cpp.o"
  "CMakeFiles/vg_pstn.dir/switch.cpp.o.d"
  "libvg_pstn.a"
  "libvg_pstn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vg_pstn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
