# Empty dependencies file for vg_pstn.
# This may be replaced when dependencies are built.
