# CMake generated Testfile for 
# Source directory: /root/repo/src/tr23821
# Build directory: /root/repo/build/src/tr23821
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
