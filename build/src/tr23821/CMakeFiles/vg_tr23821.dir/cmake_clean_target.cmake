file(REMOVE_RECURSE
  "libvg_tr23821.a"
)
