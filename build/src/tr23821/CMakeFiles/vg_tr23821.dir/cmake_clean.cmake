file(REMOVE_RECURSE
  "CMakeFiles/vg_tr23821.dir/tr_gatekeeper.cpp.o"
  "CMakeFiles/vg_tr23821.dir/tr_gatekeeper.cpp.o.d"
  "CMakeFiles/vg_tr23821.dir/tr_ms.cpp.o"
  "CMakeFiles/vg_tr23821.dir/tr_ms.cpp.o.d"
  "CMakeFiles/vg_tr23821.dir/tr_scenario.cpp.o"
  "CMakeFiles/vg_tr23821.dir/tr_scenario.cpp.o.d"
  "libvg_tr23821.a"
  "libvg_tr23821.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vg_tr23821.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
