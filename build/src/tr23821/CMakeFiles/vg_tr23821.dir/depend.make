# Empty dependencies file for vg_tr23821.
# This may be replaced when dependencies are built.
