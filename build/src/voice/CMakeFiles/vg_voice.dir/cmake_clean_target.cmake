file(REMOVE_RECURSE
  "libvg_voice.a"
)
