file(REMOVE_RECURSE
  "CMakeFiles/vg_voice.dir/codec.cpp.o"
  "CMakeFiles/vg_voice.dir/codec.cpp.o.d"
  "CMakeFiles/vg_voice.dir/rtp.cpp.o"
  "CMakeFiles/vg_voice.dir/rtp.cpp.o.d"
  "libvg_voice.a"
  "libvg_voice.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vg_voice.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
