# Empty compiler generated dependencies file for vg_voice.
# This may be replaced when dependencies are built.
