file(REMOVE_RECURSE
  "CMakeFiles/vg_h323.dir/gatekeeper.cpp.o"
  "CMakeFiles/vg_h323.dir/gatekeeper.cpp.o.d"
  "CMakeFiles/vg_h323.dir/gateway.cpp.o"
  "CMakeFiles/vg_h323.dir/gateway.cpp.o.d"
  "CMakeFiles/vg_h323.dir/ip_endpoint.cpp.o"
  "CMakeFiles/vg_h323.dir/ip_endpoint.cpp.o.d"
  "CMakeFiles/vg_h323.dir/messages.cpp.o"
  "CMakeFiles/vg_h323.dir/messages.cpp.o.d"
  "CMakeFiles/vg_h323.dir/terminal.cpp.o"
  "CMakeFiles/vg_h323.dir/terminal.cpp.o.d"
  "libvg_h323.a"
  "libvg_h323.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vg_h323.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
