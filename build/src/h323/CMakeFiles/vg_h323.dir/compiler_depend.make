# Empty compiler generated dependencies file for vg_h323.
# This may be replaced when dependencies are built.
