file(REMOVE_RECURSE
  "libvg_h323.a"
)
