file(REMOVE_RECURSE
  "libvg_sim.a"
)
