# Empty dependencies file for vg_sim.
# This may be replaced when dependencies are built.
