file(REMOVE_RECURSE
  "CMakeFiles/vg_sim.dir/message.cpp.o"
  "CMakeFiles/vg_sim.dir/message.cpp.o.d"
  "CMakeFiles/vg_sim.dir/network.cpp.o"
  "CMakeFiles/vg_sim.dir/network.cpp.o.d"
  "CMakeFiles/vg_sim.dir/stats.cpp.o"
  "CMakeFiles/vg_sim.dir/stats.cpp.o.d"
  "CMakeFiles/vg_sim.dir/time.cpp.o"
  "CMakeFiles/vg_sim.dir/time.cpp.o.d"
  "CMakeFiles/vg_sim.dir/trace.cpp.o"
  "CMakeFiles/vg_sim.dir/trace.cpp.o.d"
  "libvg_sim.a"
  "libvg_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vg_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
