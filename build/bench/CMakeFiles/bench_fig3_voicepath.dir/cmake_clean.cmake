file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_voicepath.dir/bench_fig3_voicepath.cpp.o"
  "CMakeFiles/bench_fig3_voicepath.dir/bench_fig3_voicepath.cpp.o.d"
  "bench_fig3_voicepath"
  "bench_fig3_voicepath.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_voicepath.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
