file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_origination.dir/bench_fig5_origination.cpp.o"
  "CMakeFiles/bench_fig5_origination.dir/bench_fig5_origination.cpp.o.d"
  "bench_fig5_origination"
  "bench_fig5_origination.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_origination.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
