# Empty compiler generated dependencies file for bench_fig5_origination.
# This may be replaced when dependencies are built.
