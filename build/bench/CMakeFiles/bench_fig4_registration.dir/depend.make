# Empty dependencies file for bench_fig4_registration.
# This may be replaced when dependencies are built.
