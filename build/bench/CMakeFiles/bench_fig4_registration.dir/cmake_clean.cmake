file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_registration.dir/bench_fig4_registration.cpp.o"
  "CMakeFiles/bench_fig4_registration.dir/bench_fig4_registration.cpp.o.d"
  "bench_fig4_registration"
  "bench_fig4_registration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_registration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
