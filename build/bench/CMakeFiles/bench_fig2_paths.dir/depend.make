# Empty dependencies file for bench_fig2_paths.
# This may be replaced when dependencies are built.
