# Empty dependencies file for bench_fig6_termination.
# This may be replaced when dependencies are built.
