file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_fig8_tromboning.dir/bench_fig7_fig8_tromboning.cpp.o"
  "CMakeFiles/bench_fig7_fig8_tromboning.dir/bench_fig7_fig8_tromboning.cpp.o.d"
  "bench_fig7_fig8_tromboning"
  "bench_fig7_fig8_tromboning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_fig8_tromboning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
