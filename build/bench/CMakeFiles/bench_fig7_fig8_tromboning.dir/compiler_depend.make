# Empty compiler generated dependencies file for bench_fig7_fig8_tromboning.
# This may be replaced when dependencies are built.
