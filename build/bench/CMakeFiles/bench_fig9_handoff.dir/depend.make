# Empty dependencies file for bench_fig9_handoff.
# This may be replaced when dependencies are built.
