# Empty compiler generated dependencies file for test_vgprs_edge.
# This may be replaced when dependencies are built.
