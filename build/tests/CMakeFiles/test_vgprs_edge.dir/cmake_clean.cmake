file(REMOVE_RECURSE
  "CMakeFiles/test_vgprs_edge.dir/test_vgprs_edge.cpp.o"
  "CMakeFiles/test_vgprs_edge.dir/test_vgprs_edge.cpp.o.d"
  "test_vgprs_edge"
  "test_vgprs_edge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_vgprs_edge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
