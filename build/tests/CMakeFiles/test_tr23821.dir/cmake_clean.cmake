file(REMOVE_RECURSE
  "CMakeFiles/test_tr23821.dir/test_tr23821.cpp.o"
  "CMakeFiles/test_tr23821.dir/test_tr23821.cpp.o.d"
  "test_tr23821"
  "test_tr23821.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tr23821.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
