# Empty compiler generated dependencies file for test_tr23821.
# This may be replaced when dependencies are built.
