file(REMOVE_RECURSE
  "CMakeFiles/test_msc_base.dir/test_msc_base.cpp.o"
  "CMakeFiles/test_msc_base.dir/test_msc_base.cpp.o.d"
  "test_msc_base"
  "test_msc_base.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_msc_base.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
