
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_msc_base.cpp" "tests/CMakeFiles/test_msc_base.dir/test_msc_base.cpp.o" "gcc" "tests/CMakeFiles/test_msc_base.dir/test_msc_base.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tr23821/CMakeFiles/vg_tr23821.dir/DependInfo.cmake"
  "/root/repo/build/src/vgprs/CMakeFiles/vg_core.dir/DependInfo.cmake"
  "/root/repo/build/src/h323/CMakeFiles/vg_h323.dir/DependInfo.cmake"
  "/root/repo/build/src/voice/CMakeFiles/vg_voice.dir/DependInfo.cmake"
  "/root/repo/build/src/gprs/CMakeFiles/vg_gprs.dir/DependInfo.cmake"
  "/root/repo/build/src/gsm/CMakeFiles/vg_gsm.dir/DependInfo.cmake"
  "/root/repo/build/src/pstn/CMakeFiles/vg_pstn.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/vg_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/vg_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
