# Empty compiler generated dependencies file for test_voice.
# This may be replaced when dependencies are built.
