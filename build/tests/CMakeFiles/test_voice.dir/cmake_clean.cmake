file(REMOVE_RECURSE
  "CMakeFiles/test_voice.dir/test_voice.cpp.o"
  "CMakeFiles/test_voice.dir/test_voice.cpp.o.d"
  "test_voice"
  "test_voice.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_voice.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
