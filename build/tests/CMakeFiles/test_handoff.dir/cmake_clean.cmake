file(REMOVE_RECURSE
  "CMakeFiles/test_handoff.dir/test_handoff.cpp.o"
  "CMakeFiles/test_handoff.dir/test_handoff.cpp.o.d"
  "test_handoff"
  "test_handoff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_handoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
