# Empty dependencies file for test_handoff.
# This may be replaced when dependencies are built.
