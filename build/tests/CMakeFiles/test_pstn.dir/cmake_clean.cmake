file(REMOVE_RECURSE
  "CMakeFiles/test_pstn.dir/test_pstn.cpp.o"
  "CMakeFiles/test_pstn.dir/test_pstn.cpp.o.d"
  "test_pstn"
  "test_pstn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pstn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
