# Empty compiler generated dependencies file for test_pstn.
# This may be replaced when dependencies are built.
