file(REMOVE_RECURSE
  "CMakeFiles/test_gprs.dir/test_gprs.cpp.o"
  "CMakeFiles/test_gprs.dir/test_gprs.cpp.o.d"
  "test_gprs"
  "test_gprs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gprs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
