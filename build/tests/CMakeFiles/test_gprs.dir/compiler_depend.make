# Empty compiler generated dependencies file for test_gprs.
# This may be replaced when dependencies are built.
