file(REMOVE_RECURSE
  "CMakeFiles/test_h323.dir/test_h323.cpp.o"
  "CMakeFiles/test_h323.dir/test_h323.cpp.o.d"
  "test_h323"
  "test_h323.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_h323.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
