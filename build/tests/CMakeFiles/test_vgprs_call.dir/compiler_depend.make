# Empty compiler generated dependencies file for test_vgprs_call.
# This may be replaced when dependencies are built.
