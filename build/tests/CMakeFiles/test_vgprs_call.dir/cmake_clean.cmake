file(REMOVE_RECURSE
  "CMakeFiles/test_vgprs_call.dir/test_vgprs_call.cpp.o"
  "CMakeFiles/test_vgprs_call.dir/test_vgprs_call.cpp.o.d"
  "test_vgprs_call"
  "test_vgprs_call.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_vgprs_call.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
