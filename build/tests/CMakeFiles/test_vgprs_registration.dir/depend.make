# Empty dependencies file for test_vgprs_registration.
# This may be replaced when dependencies are built.
