file(REMOVE_RECURSE
  "CMakeFiles/test_vgprs_registration.dir/test_vgprs_registration.cpp.o"
  "CMakeFiles/test_vgprs_registration.dir/test_vgprs_registration.cpp.o.d"
  "test_vgprs_registration"
  "test_vgprs_registration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_vgprs_registration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
