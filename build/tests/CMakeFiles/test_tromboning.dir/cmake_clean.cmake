file(REMOVE_RECURSE
  "CMakeFiles/test_tromboning.dir/test_tromboning.cpp.o"
  "CMakeFiles/test_tromboning.dir/test_tromboning.cpp.o.d"
  "test_tromboning"
  "test_tromboning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tromboning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
