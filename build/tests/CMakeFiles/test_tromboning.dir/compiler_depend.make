# Empty compiler generated dependencies file for test_tromboning.
# This may be replaced when dependencies are built.
