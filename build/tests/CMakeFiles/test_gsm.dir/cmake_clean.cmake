file(REMOVE_RECURSE
  "CMakeFiles/test_gsm.dir/test_gsm.cpp.o"
  "CMakeFiles/test_gsm.dir/test_gsm.cpp.o.d"
  "test_gsm"
  "test_gsm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gsm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
