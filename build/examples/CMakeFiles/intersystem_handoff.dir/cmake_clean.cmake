file(REMOVE_RECURSE
  "CMakeFiles/intersystem_handoff.dir/intersystem_handoff.cpp.o"
  "CMakeFiles/intersystem_handoff.dir/intersystem_handoff.cpp.o.d"
  "intersystem_handoff"
  "intersystem_handoff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/intersystem_handoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
