# Empty dependencies file for intersystem_handoff.
# This may be replaced when dependencies are built.
