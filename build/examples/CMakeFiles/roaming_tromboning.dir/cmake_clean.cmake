file(REMOVE_RECURSE
  "CMakeFiles/roaming_tromboning.dir/roaming_tromboning.cpp.o"
  "CMakeFiles/roaming_tromboning.dir/roaming_tromboning.cpp.o.d"
  "roaming_tromboning"
  "roaming_tromboning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/roaming_tromboning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
