# Empty compiler generated dependencies file for roaming_tromboning.
# This may be replaced when dependencies are built.
