# Empty dependencies file for mixed_traffic.
# This may be replaced when dependencies are built.
