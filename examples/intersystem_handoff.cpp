// Inter-system handoff demo (paper Fig. 9): a call is established through
// the vGPRS VMSC, the subscriber drives out of the VMSC's coverage, and the
// standard GSM inter-system handoff moves the radio leg to a neighbouring
// classic MSC while the VMSC stays anchored in the VoIP path.
//
//   $ ./intersystem_handoff
#include <cstdio>

#include "vgprs/scenario.hpp"

using namespace vgprs;

int main() {
  HandoffParams params;
  auto world = build_handoff(params);

  std::puts("== setup: register and establish a call through the VMSC ==");
  world->ms->power_on();
  world->terminal->register_endpoint();
  world->settle();
  world->ms->dial(make_subscriber(88, 1000).msisdn);
  world->settle();
  if (world->ms->state() != MobileStation::State::kConnected) {
    std::puts("call failed to establish");
    return 1;
  }
  std::printf("call up at t=%.1f ms; voice path: MS -> BTS1 -> BSC1 -> "
              "VMSC[vocoder] -> GPRS tunnel -> terminal\n",
              world->net.now().as_millis());

  world->ms->start_voice(25);
  world->terminal->start_voice(25);
  world->settle();
  double before = world->terminal->voice_latency().mean();
  std::printf("voice one-way before handoff: %.1f ms\n", before);

  std::puts("\n== the subscriber leaves cell 101 for cell 202 (MSC-B) ==");
  world->net.trace().clear();
  world->bsc1->initiate_handover(world->ms->config().imsi,
                                 world->ms->call_ref(), CellId(202));
  world->settle();

  // Show the Fig. 9 signaling.
  for (const auto& e : world->net.trace().entries()) {
    if (e.message.find("Handover") != std::string::npos ||
        e.message.find("End_Signal") != std::string::npos ||
        e.message == "A_Clear_Command") {
      std::printf("  %-8s -> %-8s %s\n", e.from.c_str(), e.to.c_str(),
                  e.message.c_str());
    }
  }
  std::printf("call still connected: %s\n",
              world->ms->state() == MobileStation::State::kConnected
                  ? "yes"
                  : "NO");

  std::puts("\n== voice after handoff (anchor VMSC still in the path) ==");
  world->ms->start_voice(25);
  world->terminal->start_voice(25);
  world->settle();
  double after = world->terminal->voice_latency().percentile(0.9);
  std::printf("voice one-way after handoff: %.1f ms (+%.1f ms for the "
              "VMSC <-E-> MSC-B trunk)\n",
              after, after - before);
  std::printf("voice path now: MS -> BTS2 -> BSC2 -> MSC-B -> E trunk -> "
              "VMSC[vocoder] -> GPRS tunnel -> terminal\n");

  std::puts("\n== hangup after handoff ==");
  world->ms->hangup();
  world->settle();
  std::printf("released cleanly: %s; PDP contexts left: %zu\n",
              world->ms->state() == MobileStation::State::kIdle ? "yes"
                                                                : "NO",
              world->sgsn->pdp_context_count());
  return 0;
}
