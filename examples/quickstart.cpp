// Quickstart: build the Fig. 2(b) vGPRS network, power on a standard GSM
// handset, register it for VoIP service, and place a call to an H.323
// terminal — the whole paper in ~60 lines of user code.
//
//   $ ./quickstart
#include <cstdio>

#include "vgprs/scenario.hpp"

using namespace vgprs;

int main() {
  // One call builds the whole network of the paper's Fig. 2(b): MS, BTS,
  // BSC, VMSC, VLR, HLR, SGSN, GGSN, IP cloud, gatekeeper, H.323 terminal.
  VgprsParams params;
  auto net = build_vgprs(params);
  MobileStation& phone = *net->ms[0];
  H323Terminal& laptop = *net->terminals[0];

  // Wire up a few observers so we can narrate what happens.
  phone.on_registered = [&] {
    std::printf("[%8.1f ms] phone registered; TMSI=%s\n",
                net->net.now().as_millis(), phone.tmsi().to_string().c_str());
  };
  phone.on_ringback = [&](CallRef) {
    std::printf("[%8.1f ms] far end is ringing...\n",
                net->net.now().as_millis());
  };
  phone.on_connected = [&](CallRef) {
    std::printf("[%8.1f ms] call connected!\n", net->net.now().as_millis());
  };
  phone.on_released = [&](CallRef) {
    std::printf("[%8.1f ms] call released\n", net->net.now().as_millis());
  };
  laptop.on_incoming = [&](CallRef, Msisdn from) {
    std::printf("[%8.1f ms] laptop rings; caller %s\n",
                net->net.now().as_millis(), from.to_string().c_str());
  };

  // Power-on registration (paper Fig. 4): GSM location update + GPRS
  // attach + PDP context + H.323 RAS registration, all driven by the VMSC.
  std::puts("== registration ==");
  phone.power_on();
  laptop.register_endpoint();
  net->settle();

  // The phone dials the laptop's E.164 alias (paper Fig. 5).
  std::puts("== call origination ==");
  phone.dial(make_subscriber(88, 1000).msisdn);
  net->settle();

  // Two seconds of speech in both directions, through the VMSC's vocoder.
  phone.start_voice(100);
  laptop.start_voice(100);
  net->settle();
  std::printf("voice: laptop heard %u frames (one-way %.1f ms), phone heard "
              "%u frames (one-way %.1f ms)\n",
              laptop.voice_frames_received(), laptop.voice_latency().mean(),
              phone.voice_frames_received(), phone.voice_latency().mean());

  // Hang up (paper steps 3.1-3.4); the gatekeeper closes the charging
  // record and the voice PDP context is deactivated.
  std::puts("== release ==");
  phone.hangup();
  net->settle();

  const auto& record = net->gk->call_records().front();
  std::printf("gatekeeper charging record: %s -> %s, %.1f s\n",
              record.calling.to_string().c_str(),
              record.called.to_string().c_str(),
              (record.disengaged - record.admitted).as_seconds());
  std::printf("PDP contexts left at SGSN: %zu (the persistent signaling "
              "context)\n",
              net->sgsn->pdp_context_count());
  std::printf("simulated signaling messages exchanged: %zu\n",
              net->net.trace().size());
  return 0;
}
