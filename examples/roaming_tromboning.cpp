// Roaming scenario (paper Figs. 7-8): x, a UK subscriber, lands in Hong
// Kong; y, a Hong Kong fixed line, calls x's UK number.  Run both worlds
// and watch the two international trunks disappear.
//
//   $ ./roaming_tromboning
#include <cstdio>

#include "vgprs/scenario.hpp"

using namespace vgprs;

namespace {

void run(const char* title, bool use_vgprs) {
  std::printf("\n===== %s =====\n", title);
  TrombParams params;
  params.use_vgprs = use_vgprs;
  auto world = build_tromboning(params);

  // x's handset registers in the visited network.  In the vGPRS world the
  // VMSC registers x's UK MSISDN at the local gatekeeper.
  world->roamer->power_on();
  world->settle();
  std::printf("x registered in HK: %s\n",
              world->roamer->state() == MobileStation::State::kIdle ? "yes"
                                                                    : "no");
  if (use_vgprs) {
    auto reg = world->gk_hk->find_alias(world->roamer_id.msisdn);
    std::printf("HK gatekeeper knows %s: %s\n",
                world->roamer_id.msisdn.to_string().c_str(),
                reg.has_value() ? "yes" : "no");
  }

  // y dials x's UK number.
  world->net.trace().clear();
  SimTime dialed = world->net.now();
  double answered_ms = -1;
  world->caller->on_connected = [&] {
    answered_ms = (world->net.now() - dialed).as_millis();
  };
  world->caller->place_call(world->roamer_id.msisdn);
  world->settle();

  std::printf("call answered after %.1f ms\n", answered_ms);
  std::printf("international trunks used: %lld\n",
              static_cast<long long>(world->international_trunks()));

  // A few seconds of conversation to measure the voice path.
  world->caller->start_voice(50);
  world->roamer->start_voice(50);
  world->settle();
  std::printf("voice one-way latency y->x: %.1f ms, x->y: %.1f ms\n",
              world->roamer->voice_latency().mean(),
              world->caller->voice_latency().mean());

  // The principal call-delivery messages, as the paper draws them.
  std::puts("call delivery flow (first 18 principal messages):");
  std::size_t shown = 0;
  for (const auto& e : world->net.trace().entries()) {
    if (e.message.starts_with("ISUP") || e.message.starts_with("MAP") ||
        e.message.starts_with("RAS") || e.message.starts_with("Q931") ||
        e.message == "A_Paging") {
      std::printf("  %-12s -> %-12s %s\n", e.from.c_str(), e.to.c_str(),
                  e.message.c_str());
      if (++shown == 18) break;
    }
  }
}

}  // namespace

int main() {
  run("Fig. 7: classic GSM — the call trombones through the UK",
      /*use_vgprs=*/false);
  run("Fig. 8: vGPRS — the local gatekeeper eliminates the trombone",
      /*use_vgprs=*/true);
  std::puts("\nSame caller, same dialled number: two international trunks");
  std::puts("versus a local VoIP call.");
  return 0;
}
