// Mixed traffic: a small city deployment — many standard GSM handsets on
// one VMSC, Poisson call arrivals toward a bank of H.323 terminals, for a
// simulated busy period.  Reports setup-latency distribution, blocking,
// PDP-context churn and the gatekeeper's charging totals.
//
//   $ ./mixed_traffic [subscribers] [minutes]
#include <cstdio>
#include <cstdlib>

#include "vgprs/scenario.hpp"

using namespace vgprs;

namespace {

/// Drives one subscriber: waits an exponential think time, calls a random
/// terminal, talks for an exponential hold time, hangs up, repeats.
class CallerScript {
 public:
  CallerScript(VgprsScenario& world, MobileStation& ms, Rng& rng,
               double mean_interarrival_s, double mean_hold_s)
      : world_(world),
        ms_(ms),
        rng_(rng),
        interarrival_s_(mean_interarrival_s),
        hold_s_(mean_hold_s) {
    ms_.on_connected = [this](CallRef) {
      ++connected_calls;
      setup_ms.add((world_.net.now() - dialed_) - SimDuration::zero());
      // Schedule the hangup through a disposable timer node trick: use the
      // MS answer-delay timer isn't available, so hang up after settle in
      // the driver loop instead.
    };
    ms_.on_failure = [this](std::string) { ++failed_calls; };
  }

  void start_call() {
    dialed_ = world_.net.now();
    ++attempted_calls;
    std::uint32_t pick =
        static_cast<std::uint32_t>(rng_.next_below(world_.terminals.size()));
    ms_.dial(make_subscriber(88, 1000 + pick).msisdn);
  }

  [[nodiscard]] double next_gap_s() {
    return rng_.exponential(interarrival_s_);
  }
  [[nodiscard]] double hold_time_s() { return rng_.exponential(hold_s_); }

  MobileStation& ms() { return ms_; }

  int attempted_calls = 0;
  int connected_calls = 0;
  int failed_calls = 0;
  Histogram setup_ms;

 private:
  VgprsScenario& world_;
  MobileStation& ms_;
  Rng& rng_;
  double interarrival_s_;
  double hold_s_;
  SimTime dialed_;
};

}  // namespace

int main(int argc, char** argv) {
  std::uint32_t subscribers =
      argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1])) : 24;
  double minutes = argc > 2 ? std::atof(argv[2]) : 10.0;

  VgprsParams params;
  params.num_ms = subscribers;
  params.num_terminals = 8;
  params.seed = 2024;
  auto world = build_vgprs(params);
  Rng rng(99);

  std::printf("deployment: %u GSM subscribers, %zu H.323 terminals, "
              "%.0f simulated minutes\n",
              subscribers, world->terminals.size(), minutes);

  // Register everyone.
  for (auto* ms : world->ms) ms->power_on();
  for (auto* t : world->terminals) t->register_endpoint();
  world->settle();
  std::printf("registered: %zu/%u handsets, %zu aliases at the GK\n",
              world->vmsc->ready_count(), subscribers,
              world->gk->registration_count());

  std::vector<std::unique_ptr<CallerScript>> scripts;
  scripts.reserve(subscribers);
  for (auto* ms : world->ms) {
    scripts.push_back(std::make_unique<CallerScript>(
        *world, *ms, rng, /*mean_interarrival_s=*/90.0,
        /*mean_hold_s=*/45.0));
  }

  // Event-driven outer loop: step simulated time in 1 s quanta; each quantum
  // may start calls (Poisson via per-user exponential clocks) or end them.
  std::vector<double> next_action_s(subscribers);
  std::vector<bool> in_call(subscribers, false);
  for (std::uint32_t i = 0; i < subscribers; ++i) {
    next_action_s[i] = scripts[i]->next_gap_s();
  }
  const double horizon_s = minutes * 60.0;
  for (double t = 0; t < horizon_s; t += 1.0) {
    for (std::uint32_t i = 0; i < subscribers; ++i) {
      if (next_action_s[i] > t) continue;
      auto& script = *scripts[i];
      if (!in_call[i]) {
        if (script.ms().state() == MobileStation::State::kIdle) {
          script.start_call();
          in_call[i] = true;
          next_action_s[i] = t + script.hold_time_s();
        } else {
          next_action_s[i] = t + 1.0;
        }
      } else {
        script.ms().hangup();
        in_call[i] = false;
        next_action_s[i] = t + script.next_gap_s();
      }
    }
    world->net.run_until(SimTime::from_micros(
        static_cast<std::int64_t>((t + 1.0) * 1e6)));
  }
  // Drain remaining calls (twice: a call still in setup can only be
  // released once it has progressed far enough to own a transaction).
  for (int round = 0; round < 3; ++round) {
    for (auto* ms : world->ms) ms->hangup();
    world->settle();
  }

  int attempted = 0;
  int connected = 0;
  for (auto& s : scripts) {
    attempted += s->attempted_calls;
    connected += s->connected_calls;
  }

  std::puts("\n== busy-period results ==");
  std::printf("call attempts:       %d\n", attempted);
  std::printf("connected:           %d\n", connected);
  std::printf("failed/abandoned:    %d (callee busy or congestion)\n",
              attempted - connected);
  double total_setup = 0;
  std::size_t setup_samples = 0;
  double worst = 0;
  for (auto& s : scripts) {
    if (s->setup_ms.empty()) continue;
    total_setup += s->setup_ms.mean() * static_cast<double>(
                                            s->setup_ms.count());
    setup_samples += s->setup_ms.count();
    worst = std::max(worst, s->setup_ms.max());
  }
  if (setup_samples > 0) {
    std::printf("mean setup latency:  %.1f ms (max %.1f ms)\n",
                total_setup / static_cast<double>(setup_samples), worst);
  }
  std::size_t closed = 0;
  double talk_s = 0;
  for (const auto& rec : world->gk->call_records()) {
    if (!rec.open) {
      ++closed;
      talk_s += (rec.disengaged - rec.admitted).as_seconds();
    }
  }
  std::printf("charging records:    %zu closed, %.1f erlang-seconds total\n",
              closed, talk_s);
  std::printf("PDP contexts now:    %zu (signaling contexts = %u "
              "subscribers)\n",
              world->sgsn->pdp_context_count(), subscribers);
  std::printf("signaling messages:  %zu across the busy period\n",
              world->net.trace().size());
  return 0;
}
